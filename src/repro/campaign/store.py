"""The persistent campaign results store (SQLite).

Every campaign run records what it did into one SQLite file, so a grid of
hundreds of scenarios has a durable record — what ran, what failed, how
long each point took and every :class:`~repro.scenario.engine.ScenarioResult`
row — instead of a directory of anonymous pickles.  The schema:

* ``campaigns`` — one row per registered campaign (identity = the
  schema-versioned hash of its spec), holding the spec JSON.
* ``points`` — one row per expanded grid point and campaign, carrying the
  point's axis coordinates, scenario spec, status (``pending`` → ``done`` /
  ``error``), error traceback and timing.
* ``results`` — one row per **config hash**, holding the result JSON.  The
  config hash is the idempotency key: a point whose hash already has a
  result is complete by definition, which is what makes campaigns
  resumable (and lets separate campaigns share identical points).
* ``metrics`` — flattened per-scheme scalar metrics
  (:meth:`~repro.scenario.engine.ScenarioResult.headline_metrics`) per
  config hash, so the report layer aggregates without re-parsing JSON.

A single process writes the store (workers only compute), so plain SQLite
transactions per recorded point are all the durability machinery needed: a
killed run loses at most the in-flight chunk.
"""

from __future__ import annotations

import copy
import json
import os
import sqlite3
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import ConfigurationError
from ..scenario.engine import ScenarioResult
from .spec import CampaignPoint, CampaignSpec

#: Bump on incompatible schema changes (checked against ``PRAGMA user_version``).
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    num_points  INTEGER NOT NULL,
    created_at  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    campaign_id  TEXT NOT NULL REFERENCES campaigns(campaign_id),
    config_hash  TEXT NOT NULL,
    point_index  INTEGER NOT NULL,
    name         TEXT NOT NULL,
    axes_json    TEXT NOT NULL,
    spec_json    TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'pending',
    error        TEXT,
    elapsed_s    REAL,
    completed_at TEXT,
    PRIMARY KEY (campaign_id, config_hash)
);
CREATE TABLE IF NOT EXISTS results (
    config_hash TEXT PRIMARY KEY,
    result_json TEXT NOT NULL,
    created_at  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS metrics (
    config_hash TEXT NOT NULL REFERENCES results(config_hash),
    scheme      TEXT NOT NULL,
    metric      TEXT NOT NULL,
    value       REAL,
    PRIMARY KEY (config_hash, scheme, metric)
);
CREATE INDEX IF NOT EXISTS idx_points_status ON points(campaign_id, status);
"""

#: Result/metric fields that carry wall-clock measurements.  They differ
#: between otherwise identical runs, so determinism-sensitive comparisons
#: (``canonical_dump``) strip them.
VOLATILE_RESULT_FIELDS = ("compute_seconds",)
VOLATILE_REACTION_KEYS = ("compute_seconds",)


def _now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def canonical_result_dict(result: Mapping[str, Any]) -> Dict[str, Any]:
    """A result dict with every wall-clock field stripped.

    Two runs of the same grid produce bit-identical canonical dicts — the
    basis of the resume guarantee ("an interrupted-and-resumed store matches
    an uninterrupted serial run") — while raw stored rows keep their
    timings.
    """
    canonical = copy.deepcopy(dict(result))
    for field in VOLATILE_RESULT_FIELDS:
        canonical.pop(field, None)
    reaction = canonical.get("reaction")
    if isinstance(reaction, Mapping):
        canonical["reaction"] = {
            label: [
                {k: v for k, v in record.items() if k not in VOLATILE_REACTION_KEYS}
                for record in records
            ]
            for label, records in reaction.items()
        }
    return canonical


class CampaignStore:
    """One SQLite results store, usable as a context manager."""

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(str(self.path))
        self._connection.row_factory = sqlite3.Row
        try:
            self._connection.execute("PRAGMA foreign_keys = ON")
            version = self._connection.execute("PRAGMA user_version").fetchone()[0]
        except sqlite3.DatabaseError as error:
            self._connection.close()
            raise ConfigurationError(
                f"{self.path} is not a SQLite campaign store ({error})"
            ) from error
        if version == 0:
            self._connection.executescript(_SCHEMA)
            self._connection.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION}")
            self._connection.commit()
        elif version != STORE_SCHEMA_VERSION:
            self._connection.close()
            raise ConfigurationError(
                f"campaign store {self.path} has schema version {version}, "
                f"this code expects {STORE_SCHEMA_VERSION}"
            )

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Registration and status
    # ------------------------------------------------------------------ #
    def register_campaign(
        self, spec: CampaignSpec, points: Sequence[CampaignPoint]
    ) -> str:
        """Idempotently record a campaign and its expanded points.

        Re-registering the same campaign (same spec, hence same id) leaves
        existing point statuses untouched — that is what makes re-invoking
        ``run-campaign`` a resume rather than a restart.
        """
        campaign_id = spec.campaign_id()
        self._connection.execute(
            "INSERT OR IGNORE INTO campaigns "
            "(campaign_id, name, spec_json, num_points, created_at) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                campaign_id,
                spec.name,
                json.dumps(spec.to_dict(), sort_keys=True),
                len(points),
                _now(),
            ),
        )
        self._connection.executemany(
            "INSERT OR IGNORE INTO points "
            "(campaign_id, config_hash, point_index, name, axes_json, spec_json) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            [
                (
                    campaign_id,
                    point.config_hash,
                    point.index,
                    point.name,
                    json.dumps(point.axes, sort_keys=True),
                    json.dumps(point.spec.to_dict(), sort_keys=True),
                )
                for point in points
            ],
        )
        self._connection.commit()
        return campaign_id

    def adopt_existing_results(self, campaign_id: str) -> int:
        """Mark pending points complete when their result row already exists.

        The config hash is the idempotency key across the whole store, so a
        point another campaign (or an interrupted run) already computed is
        done — no execution needed.  Returns how many points were adopted.
        """
        cursor = self._connection.execute(
            "UPDATE points SET status = 'done', error = NULL, completed_at = ? "
            "WHERE campaign_id = ? AND status != 'done' "
            "AND config_hash IN (SELECT config_hash FROM results)",
            (_now(), campaign_id),
        )
        self._connection.commit()
        return cursor.rowcount

    def point_statuses(self, campaign_id: str) -> Dict[str, str]:
        """``config_hash -> status`` for every point of a campaign."""
        rows = self._connection.execute(
            "SELECT config_hash, status FROM points WHERE campaign_id = ?",
            (campaign_id,),
        )
        return {row["config_hash"]: row["status"] for row in rows}

    def status_counts(self, campaign_id: str) -> Dict[str, int]:
        """``{'total', 'done', 'error', 'pending'}`` counts for a campaign."""
        rows = self._connection.execute(
            "SELECT status, COUNT(*) AS n FROM points "
            "WHERE campaign_id = ? GROUP BY status",
            (campaign_id,),
        )
        counts = {"done": 0, "error": 0, "pending": 0}
        for row in rows:
            counts[row["status"]] = row["n"]
        counts["total"] = sum(counts.values())
        return counts

    # ------------------------------------------------------------------ #
    # Recording outcomes
    # ------------------------------------------------------------------ #
    def record_result(
        self,
        campaign_id: str,
        point: CampaignPoint,
        result: ScenarioResult,
        elapsed_s: float,
    ) -> None:
        """Persist one successful point: result row, metrics, point status."""
        result_dict = result.to_dict()
        self._connection.execute(
            "INSERT OR REPLACE INTO results (config_hash, result_json, created_at) "
            "VALUES (?, ?, ?)",
            (point.config_hash, json.dumps(result_dict, sort_keys=True), _now()),
        )
        self._connection.execute(
            "DELETE FROM metrics WHERE config_hash = ?", (point.config_hash,)
        )
        self._connection.executemany(
            "INSERT INTO metrics (config_hash, scheme, metric, value) "
            "VALUES (?, ?, ?, ?)",
            [
                (point.config_hash, scheme, metric, float(value))
                for scheme, entry in result.headline_metrics().items()
                for metric, value in entry.items()
            ],
        )
        self._connection.execute(
            "UPDATE points SET status = 'done', error = NULL, elapsed_s = ?, "
            "completed_at = ? WHERE campaign_id = ? AND config_hash = ?",
            (elapsed_s, _now(), campaign_id, point.config_hash),
        )
        self._connection.commit()

    def record_failure(
        self, campaign_id: str, point: CampaignPoint, error: str, elapsed_s: float
    ) -> None:
        """Persist one failed point (status ``error`` plus the traceback)."""
        self._connection.execute(
            "UPDATE points SET status = 'error', error = ?, elapsed_s = ?, "
            "completed_at = ? WHERE campaign_id = ? AND config_hash = ?",
            (error, elapsed_s, _now(), campaign_id, point.config_hash),
        )
        self._connection.commit()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def campaigns(self) -> List[Dict[str, Any]]:
        """Every stored campaign with its status counts, oldest first."""
        rows = self._connection.execute(
            "SELECT c.campaign_id, c.name, c.num_points, c.created_at, "
            "SUM(p.status = 'done') AS done, SUM(p.status = 'error') AS errors, "
            "SUM(p.status = 'pending') AS pending "
            "FROM campaigns c LEFT JOIN points p USING (campaign_id) "
            "GROUP BY c.campaign_id ORDER BY c.created_at, c.campaign_id"
        )
        return [dict(row) for row in rows]

    def find_campaign(self, selector: Optional[str] = None) -> Dict[str, Any]:
        """Resolve a campaign by name, full id or id prefix.

        With no selector the store must hold exactly one campaign.

        Raises:
            ConfigurationError: On no match, an ambiguous match, or an
                empty store.
        """
        campaigns = self.campaigns()
        if not campaigns:
            raise ConfigurationError(f"campaign store {self.path} holds no campaigns")
        if selector is None:
            if len(campaigns) == 1:
                return campaigns[0]
            names = ", ".join(
                f"{row['name']} ({row['campaign_id'][:12]})" for row in campaigns
            )
            raise ConfigurationError(
                f"campaign store holds {len(campaigns)} campaigns — select one "
                f"by name or id: {names}"
            )
        matches = [
            row
            for row in campaigns
            if row["name"] == selector or row["campaign_id"].startswith(selector)
        ]
        if len(matches) == 1:
            return matches[0]
        names = ", ".join(
            f"{row['name']} ({row['campaign_id'][:12]})" for row in campaigns
        )
        if not matches:
            raise ConfigurationError(
                f"no campaign matches {selector!r}; stored campaigns: {names}"
            )
        raise ConfigurationError(
            f"{selector!r} is ambiguous; stored campaigns: {names}"
        )

    def points(self, campaign_id: str) -> List[Dict[str, Any]]:
        """Every point row of a campaign, in grid order (axes decoded)."""
        rows = self._connection.execute(
            "SELECT * FROM points WHERE campaign_id = ? ORDER BY point_index",
            (campaign_id,),
        )
        decoded = []
        for row in rows:
            entry = dict(row)
            entry["axes"] = json.loads(entry.pop("axes_json"))
            entry["spec"] = json.loads(entry.pop("spec_json"))
            decoded.append(entry)
        return decoded

    def result(self, config_hash: str) -> Optional[ScenarioResult]:
        """The stored result for a config hash, if any."""
        row = self._connection.execute(
            "SELECT result_json FROM results WHERE config_hash = ?", (config_hash,)
        ).fetchone()
        if row is None:
            return None
        return ScenarioResult.from_dict(json.loads(row["result_json"]))

    def iter_results(
        self, campaign_id: str
    ) -> Iterator[Tuple[Dict[str, Any], ScenarioResult]]:
        """``(point row, result)`` pairs for every completed point, in order."""
        rows = self._connection.execute(
            "SELECT p.*, r.result_json FROM points p "
            "JOIN results r USING (config_hash) "
            "WHERE p.campaign_id = ? AND p.status = 'done' ORDER BY p.point_index",
            (campaign_id,),
        )
        for row in rows:
            entry = dict(row)
            result_json = entry.pop("result_json")
            entry["axes"] = json.loads(entry.pop("axes_json"))
            entry["spec"] = json.loads(entry.pop("spec_json"))
            yield entry, ScenarioResult.from_dict(json.loads(result_json))

    def metric_rows(self, campaign_id: str) -> List[Dict[str, Any]]:
        """One flat row per (completed point, scheme): axes + metric columns.

        The report layer's working set — every row carries the point's axis
        coordinates plus that scheme's scalar metrics, ready to filter,
        group and export.
        """
        rows = self._connection.execute(
            "SELECT p.point_index, p.name, p.config_hash, p.axes_json, "
            "m.scheme, m.metric, m.value "
            "FROM points p JOIN metrics m USING (config_hash) "
            "WHERE p.campaign_id = ? AND p.status = 'done' "
            "ORDER BY p.point_index, m.scheme, m.metric",
            (campaign_id,),
        )
        flattened: Dict[Tuple[int, str], Dict[str, Any]] = {}
        for row in rows:
            key = (row["point_index"], row["scheme"])
            entry = flattened.get(key)
            if entry is None:
                entry = {
                    "point_index": row["point_index"],
                    "point": row["name"],
                    "config_hash": row["config_hash"],
                    "scheme": row["scheme"],
                }
                entry.update(json.loads(row["axes_json"]))
                flattened[key] = entry
            entry[row["metric"]] = row["value"]
        return [flattened[key] for key in sorted(flattened)]

    def metric_names(self, campaign_id: str) -> List[str]:
        """Every metric recorded for a campaign (for input validation)."""
        rows = self._connection.execute(
            "SELECT DISTINCT m.metric FROM points p JOIN metrics m "
            "USING (config_hash) WHERE p.campaign_id = ? ORDER BY m.metric",
            (campaign_id,),
        )
        return [row["metric"] for row in rows]

    def canonical_dump(self, campaign_id: str) -> Dict[str, Any]:
        """A deterministic view of a campaign's stored state.

        Strips every wall-clock field (point timings, timestamps, the
        per-step compute series inside results) so that an interrupted-and-
        resumed campaign compares bit-for-bit equal to an uninterrupted
        serial run of the same grid.
        """
        campaign = self._connection.execute(
            "SELECT campaign_id, name, spec_json, num_points FROM campaigns "
            "WHERE campaign_id = ?",
            (campaign_id,),
        ).fetchone()
        if campaign is None:
            raise ConfigurationError(f"campaign {campaign_id!r} is not in the store")
        points = self._connection.execute(
            "SELECT config_hash, point_index, name, axes_json, spec_json, "
            "status, error FROM points WHERE campaign_id = ? ORDER BY point_index",
            (campaign_id,),
        ).fetchall()
        result_rows = self._connection.execute(
            "SELECT p.config_hash, r.result_json FROM points p "
            "JOIN results r USING (config_hash) WHERE p.campaign_id = ?",
            (campaign_id,),
        )
        results: Dict[str, Any] = {
            row["config_hash"]: canonical_result_dict(json.loads(row["result_json"]))
            for row in result_rows
        }
        return {
            "campaign": dict(campaign),
            "points": [dict(row) for row in points],
            "results": results,
        }


__all__ = [
    "STORE_SCHEMA_VERSION",
    "CampaignStore",
    "canonical_result_dict",
]
