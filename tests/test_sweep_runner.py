"""Tests for the sweep runner: caching, parallel/serial equality, hashing."""

import logging
import pickle

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    FIGURE_REGISTRY,
    Sweep,
    _cache_file,
    apply_spec_setting,
    execute_point_outcome,
    function_reference,
    grid,
    iter_outcome_chunks,
    main,
    point,
    resolve_function,
    run_sweep,
)


# Module-level point functions: sweep points must be importable by workers.
def _square(value):
    return value * value


def _square_or_boom(value):
    if value < 0:
        raise ValueError(f"no negatives: {value}")
    return value * value


def _record_and_square(value, marker_dir):
    """Squares *value* and leaves a side-effect marker (to count executions)."""
    import os

    with open(os.path.join(marker_dir, f"ran-{value}"), "a") as handle:
        handle.write("x")
    return value * value


# --------------------------------------------------------------------- #
# Points, references and hashing
# --------------------------------------------------------------------- #
def test_function_reference_roundtrip():
    reference = function_reference(_square)
    assert reference.endswith(":_square")
    assert resolve_function(reference) is _square
    assert function_reference(reference) == reference
    with pytest.raises(ConfigurationError):
        function_reference(lambda x: x)
    with pytest.raises(ConfigurationError):
        function_reference("not-a-reference")


def test_config_hash_is_order_insensitive_and_param_sensitive():
    first = point(_square, value=3)
    assert point(_square, value=3).config_hash() == first.config_hash()
    assert point(_square, value=4).config_hash() != first.config_hash()
    multi_a = point(_record_and_square, value=1, marker_dir="/tmp/x")
    multi_b = point(_record_and_square, marker_dir="/tmp/x", value=1)
    assert multi_a.config_hash() == multi_b.config_hash()


def test_config_hash_numpy_scalars_match_python_equivalents():
    import numpy as np

    numpy_point = point(
        _square,
        a=np.int64(3),
        b=np.float64(1.5),
        c=np.bool_(True),
        d=np.array([1.0, 2.0]),
    )
    python_point = point(_square, a=3, b=1.5, c=True, d=[1.0, 2.0])
    assert numpy_point.config_hash() == python_point.config_hash()
    assert point(_square, a=np.int32(3)).config_hash() == point(_square, a=3).config_hash()
    # 2-D arrays canonicalise like nested lists.
    assert (
        point(_square, m=np.arange(4.0).reshape(2, 2)).config_hash()
        == point(_square, m=[[0.0, 1.0], [2.0, 3.0]]).config_hash()
    )


def test_config_hash_nested_dataclasses_match_top_level():
    import dataclasses

    @dataclasses.dataclass
    class Inner:
        x: int

    @dataclasses.dataclass
    class Outer:
        inner: Inner
        y: int

    # The same Inner value must hash identically whether it appears at top
    # level or nested inside another dataclass (regression: asdict used to
    # flatten nested dataclasses into anonymous dicts).
    from repro.experiments.runner import _canonical_value

    direct = _canonical_value(Inner(x=1))
    nested = _canonical_value(Outer(inner=Inner(x=1), y=2))
    assert nested[1]["inner"] == direct
    # And a plain dict with the same shape is NOT confused with a dataclass.
    assert _canonical_value({"x": 1}) != direct


def test_config_hash_distinguishes_callable_and_object_params():
    # Callable-valued params hash by import reference, not by (empty) __dict__.
    with_square = point(_record_and_square, fn=_square)
    with_other = point(_record_and_square, fn=_record_and_square)
    assert with_square.config_hash() != with_other.config_hash()
    # Lambdas cannot be stably identified: fail loudly, never alias entries.
    with pytest.raises(ConfigurationError):
        point(_record_and_square, fn=lambda x: x).config_hash()
    # Plain objects hash by class + attributes, stable across instances.
    from repro.power import CiscoRouterPowerModel

    one = point(_square, model=CiscoRouterPowerModel()).config_hash()
    two = point(_square, model=CiscoRouterPowerModel()).config_hash()
    assert one == two

    # Objects whose repr embeds a memory address (no __dict__ to inspect)
    # cannot be keyed stably: reject instead of silently aliasing entries.
    class Slotted:
        __slots__ = ("value",)

        def __init__(self):
            self.value = 1

    with pytest.raises(ConfigurationError):
        point(_square, model=Slotted()).config_hash()


def test_grid_cartesian_product():
    points = grid(k=[4, 8], seed=[0, 1])
    assert points == [
        {"k": 4, "seed": 0},
        {"k": 4, "seed": 1},
        {"k": 8, "seed": 0},
        {"k": 8, "seed": 1},
    ]


# --------------------------------------------------------------------- #
# Execution: serial, parallel and cached
# --------------------------------------------------------------------- #
def test_run_sweep_serial_preserves_order():
    results = run_sweep(_square, [{"value": v} for v in (3, 1, 2)])
    assert results == [9, 1, 4]


def test_parallel_and_serial_results_are_equal():
    sweep = Sweep()
    for value in range(8):
        sweep.add(_square, label=str(value), value=value)
    serial = sweep.run(parallel=False)
    parallel = sweep.run(parallel=True)
    assert serial == parallel == [v * v for v in range(8)]


def test_cache_avoids_recomputation(tmp_path):
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    cache_dir = tmp_path / "cache"
    sweep = Sweep(cache_dir=cache_dir)
    for value in (2, 5):
        sweep.add(_record_and_square, label=str(value), value=value, marker_dir=str(marker_dir))

    first = sweep.run()
    assert first == [4, 25]
    assert len(sweep.cached_points()) == 2
    assert sorted(p.name for p in marker_dir.iterdir()) == ["ran-2", "ran-5"]

    second = sweep.run()  # served from disk: no new side effects
    assert second == first
    assert all((marker_dir / name).read_text() == "x" for name in ("ran-2", "ran-5"))

    assert sweep.clear_cache() == 2
    assert sweep.cached_points() == []
    third = sweep.run()  # recomputes after the cache was cleared
    assert third == first
    assert (marker_dir / "ran-2").read_text() == "xx"


def test_parallel_run_writes_shared_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    sweep = Sweep(cache_dir=cache_dir, processes=2)
    for value in range(4):
        sweep.add(_square, label=str(value), value=value)
    assert sweep.run(parallel=True) == [0, 1, 4, 9]
    assert len(sweep.cached_points()) == 4
    # A fresh serial sweep over the same points reads the same entries.
    again = Sweep(sweep.points, cache_dir=cache_dir)
    assert again.run() == [0, 1, 4, 9]


def test_run_labelled_requires_unique_labels():
    sweep = Sweep().add(_square, label="dup", value=1).add(_square, label="dup", value=2)
    with pytest.raises(ConfigurationError):
        sweep.run_labelled()
    assert sweep.run() == [1, 4]


def test_corrupt_cache_entry_logs_and_recomputes(tmp_path, caplog):
    """A truncated/garbage per-point pickle must not sink the sweep."""
    sweep = Sweep(cache_dir=tmp_path).add(_square, label="4", value=4)
    assert sweep.run() == [16]

    cache_path = _cache_file(tmp_path, sweep.points[0])
    assert cache_path.exists()
    cache_path.write_bytes(b"this is not a pickle")
    with caplog.at_level(logging.WARNING, logger="repro.experiments.runner"):
        assert sweep.run() == [16]  # recomputed, not crashed
    assert any("corrupt sweep cache entry" in record.message for record in caplog.records)
    with open(cache_path, "rb") as handle:  # the entry was rewritten intact
        assert pickle.load(handle) == 16

    # Truncated mid-write (e.g. a killed process): same recovery.
    cache_path.write_bytes(pickle.dumps(16)[:3])
    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.experiments.runner"):
        assert sweep.run() == [16]
    assert any("recomputing" in record.message for record in caplog.records)


# --------------------------------------------------------------------- #
# Error-isolating outcome backend
# --------------------------------------------------------------------- #
def test_execute_point_outcome_captures_error_and_timing():
    good = execute_point_outcome(point(_square_or_boom, value=3))
    assert good.ok and good.value == 9 and good.error is None
    assert good.elapsed_s >= 0.0
    bad = execute_point_outcome(point(_square_or_boom, value=-1))
    assert not bad.ok and bad.value is None
    assert "ValueError" in bad.error and "no negatives" in bad.error


def test_iter_outcome_chunks_preserves_order_and_isolates_failures():
    points = [point(_square_or_boom, label=str(v), value=v) for v in (2, -1, 3, 4)]
    chunks = list(iter_outcome_chunks(points, chunk_size=3))
    assert [len(chunk) for chunk in chunks] == [3, 1]
    outcomes = [outcome for chunk in chunks for outcome in chunk]
    assert [outcome.ok for outcome in outcomes] == [True, False, True, True]
    assert [outcome.value for outcome in outcomes] == [4, None, 9, 16]

    # Serial default: one point per chunk (maximum durability granularity).
    assert [len(chunk) for chunk in iter_outcome_chunks(points)] == [1, 1, 1, 1]

    # Parallel execution yields the same outcomes in the same order.
    parallel = [
        outcome
        for chunk in iter_outcome_chunks(points, parallel=True, processes=2, chunk_size=2)
        for outcome in chunk
    ]
    assert [outcome.value for outcome in parallel] == [4, None, 9, 16]
    assert "ValueError" in parallel[1].error

    with pytest.raises(ConfigurationError):
        list(iter_outcome_chunks(points, chunk_size=0))
    assert list(iter_outcome_chunks([])) == []


def test_apply_spec_setting_targets_and_errors():
    data = {"topology": "geant", "schemes": ["response"]}
    apply_spec_setting(data, "scenario.name", "renamed")
    assert data["name"] == "renamed"
    apply_spec_setting(data, "topology.k", 4)
    assert data["topology"] == {"name": "geant", "params": {"k": 4}}
    apply_spec_setting(data, "response.num_paths", 3)
    assert data["schemes"][0] == {"name": "response", "params": {"num_paths": 3}}
    with pytest.raises(ConfigurationError):
        apply_spec_setting(data, "traffic.num_pairs", 4)  # no traffic section
    with pytest.raises(ConfigurationError):
        apply_spec_setting(data, "nonsense", 1)  # no SECTION.KEY shape
    with pytest.raises(ConfigurationError):
        apply_spec_setting(data, "events.0.time_s", 1.0)  # no events yet
    with pytest.raises(ConfigurationError):
        apply_spec_setting(data, "unknown-label.x", 1)


# --------------------------------------------------------------------- #
# Figure-level integration and CLI
# --------------------------------------------------------------------- #
def test_registry_covers_all_figure_drivers():
    from repro import experiments

    for name, reference in FIGURE_REGISTRY.items():
        assert resolve_function(reference) is getattr(
            experiments, reference.rpartition(":")[2]
        ), name


def test_fig4_cached_rerun_is_identical(tmp_path):
    from repro.experiments import run_fig4

    fresh = run_fig4(num_intervals=3, include_elastictree=False, cache_dir=tmp_path)
    cached = run_fig4(num_intervals=3, include_elastictree=False, cache_dir=tmp_path)
    assert cached.power_percent == fresh.power_percent
    assert list(tmp_path.glob("*.pkl"))  # per-point results landed on disk


def test_cli_list_and_unknown(capsys):
    assert main(["--list"]) == 0
    listed = capsys.readouterr().out.split()
    assert "fig4" in listed and "fig9" in listed
    with pytest.raises(SystemExit):
        main(["definitely-not-an-experiment"])


def test_cli_deduplicates_repeated_names(capsys):
    assert main(["fig7", "fig7"]) == 0
    out = capsys.readouterr().out
    assert out.count("fig7:") == 1
