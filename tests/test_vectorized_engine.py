"""Equivalence tests: vectorized engine vs the dict-based reference oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.routing import Path
from repro.simulator import (
    NUM_LINK_STATES,
    Flow,
    LinkState,
    SimulatedNetwork,
    constant_demand,
    reference_max_min_rates,
)
from repro.topology import random_connected_topology
from repro.units import mbps


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
@st.composite
def allocation_scenarios(draw):
    """A random network plus flows on shortest paths with random demands.

    Includes zero demands and randomly failed/sleeping links, so the oracle
    comparison also covers the freezing edge cases.
    """
    num_nodes = draw(st.integers(min_value=4, max_value=10))
    max_links = num_nodes * (num_nodes - 1) // 2
    num_links = draw(
        st.integers(min_value=num_nodes - 1, max_value=min(max_links, 2 * num_nodes))
    )
    seed = draw(st.integers(min_value=0, max_value=10_000))
    topology = random_connected_topology(num_nodes, num_links, seed=seed)
    network = SimulatedNetwork(topology)

    nodes = topology.nodes()
    num_flows = draw(st.integers(min_value=1, max_value=12))
    flows = []
    for index in range(num_flows):
        origin = draw(st.sampled_from(nodes))
        destination = draw(st.sampled_from(nodes))
        demand = draw(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=0.0, max_value=mbps(500), allow_nan=False),
            )
        )
        path = (
            Path.of([origin])
            if origin == destination
            else Path.of(topology.shortest_path(origin, destination))
        )
        if draw(st.booleans()) or origin == destination:
            assigned = path
        else:
            assigned = None  # unrouted flow
        flows.append(
            Flow(f"f{index}", origin, destination, constant_demand(demand), path=assigned)
        )

    # Randomly disturb link states (fail first; sleeping requires ACTIVE).
    for link in network.links():
        choice = draw(st.integers(min_value=0, max_value=9))
        if choice == 0:
            link.fail()
        elif choice == 1:
            link.sleep()
    return network, flows


# --------------------------------------------------------------------- #
# Property: the vectorized allocation matches the seed oracle
# --------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(scenario=allocation_scenarios())
def test_vectorized_rates_match_reference_oracle(scenario):
    network, flows = scenario
    expected_rates, expected_loads = reference_max_min_rates(network, flows, now_s=0.0)

    network.allocate_rates(flows, now_s=0.0)

    for flow in flows:
        assert flow.rate_bps == pytest.approx(
            expected_rates[flow.flow_id], rel=1e-9, abs=1e-6
        )
    for arc, expected in expected_loads.items():
        assert network.arc_load(*arc) == pytest.approx(expected, rel=1e-9, abs=1e-3)


def test_zero_demand_flow_does_not_starve_others(diamond, cisco_model):
    """A zero-demand routable flow freezes without starving the filling.

    The seed implementation broke out of the progressive filling on the
    first zero-size step, zeroing every other flow; both implementations
    now freeze the idle flow and keep filling (and must stay in parity).
    """
    network = SimulatedNetwork(diamond, cisco_model)
    path = Path.of(["a", "b", "d"])
    flows = [
        Flow("idle", "a", "d", constant_demand(0.0), path=path),
        Flow("busy", "a", "d", constant_demand(mbps(50)), path=path),
    ]
    expected_rates, _ = reference_max_min_rates(network, flows, now_s=0.0)
    network.allocate_rates(flows, now_s=0.0)
    for flow in flows:
        assert flow.rate_bps == pytest.approx(expected_rates[flow.flow_id], abs=1e-6)
    assert flows[0].rate_bps == 0.0
    assert flows[1].rate_bps == pytest.approx(mbps(50))


def test_trivial_single_node_path(diamond, cisco_model):
    """A one-node path crosses no arcs and receives its full demand."""
    network = SimulatedNetwork(diamond, cisco_model)
    flow = Flow("self", "a", "a", constant_demand(mbps(3)), path=Path.of(["a"]))
    expected_rates, _ = reference_max_min_rates(network, [flow], now_s=0.0)
    network.allocate_rates([flow], now_s=0.0)
    assert flow.rate_bps == pytest.approx(expected_rates["self"])
    assert flow.rate_bps == pytest.approx(mbps(3))


# --------------------------------------------------------------------- #
# Arc table and array views
# --------------------------------------------------------------------- #
def test_compile_path_is_memoised_and_validates(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    path = Path.of(["a", "b", "d"])
    compiled = network.compile_path(path)
    assert compiled is network.compile_path(Path.of(["a", "b", "d"]))
    assert compiled.num_hops == 2
    table = network.arc_table
    assert [table.arc_keys[index] for index in compiled.arc_indices] == [
        ("a", "b"),
        ("b", "d"),
    ]
    with pytest.raises(SimulationError):
        network.compile_path(Path.of(["a", "d"]))  # no direct a-d arc


def test_link_vectors_track_state_machines(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    assert network.link_usable_vector().all()
    network.fail_link("a", "b")
    network.link("a", "c").sleep()
    usable = network.link_usable_vector()
    codes = network.link_state_codes()
    assert usable.sum() == len(network.links()) - 2
    histogram = np.bincount(codes, minlength=NUM_LINK_STATES)
    assert histogram[LinkState.FAILED.code] == 1
    assert histogram[LinkState.SLEEPING.code] == 1
    assert histogram[LinkState.ACTIVE.code] == len(network.links()) - 2


def test_arc_load_vector_alignment(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    flow = Flow("f", "a", "d", constant_demand(mbps(10)), path=Path.of(["a", "b", "d"]))
    network.allocate_rates([flow], now_s=0.0)
    vector = network.arc_load_vector()
    table = network.arc_table
    assert vector[table.arc_index[("a", "b")]] == pytest.approx(mbps(10))
    assert vector[table.arc_index[("b", "a")]] == 0.0
    assert network.arc_load("nope", "nowhere") == 0.0
