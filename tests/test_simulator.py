"""Tests for the flow-level simulator (links, flows, network, engine)."""

import pytest

from repro.exceptions import SimulationError
from repro.simulator import (
    FailureSchedule,
    Flow,
    LinkState,
    SimulatedNetwork,
    SimulationEngine,
    constant_demand,
    stepped_demand,
)
from repro.routing import Path
from repro.units import mbps


# --------------------------------------------------------------------- #
# Link state machine
# --------------------------------------------------------------------- #
def test_link_sleep_wake_cycle(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model, wake_delay_s=1.0)
    link = network.link("a", "b")
    assert link.state == LinkState.ACTIVE
    link.sleep()
    assert link.state == LinkState.SLEEPING
    assert not link.is_usable
    link.request_wake(now_s=10.0)
    assert link.state == LinkState.WAKING
    assert link.consumes_power
    link.advance(10.5)
    assert link.state == LinkState.WAKING
    link.advance(11.0)
    assert link.state == LinkState.ACTIVE


def test_link_failure_and_repair(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    network.fail_link("a", "b")
    link = network.link("a", "b")
    assert link.state == LinkState.FAILED
    assert not link.consumes_power
    link.request_wake(0.0)  # waking a failed link is a no-op
    assert link.state == LinkState.FAILED
    with pytest.raises(SimulationError):
        link.sleep()
    network.repair_link("a", "b")
    assert link.state == LinkState.ACTIVE


def test_sleep_idle_links_keeps_requested(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    network.sleep_idle_links(keep_active=[("a", "b"), ("b", "d")])
    assert network.link("a", "b").state == LinkState.ACTIVE
    assert network.link("a", "c").state == LinkState.SLEEPING
    nodes, links = network.active_elements()
    assert links == {("a", "b"), ("b", "d")}
    assert nodes == {"a", "b", "d"}


def test_power_percent_drops_when_links_sleep(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    assert network.power_percent() == pytest.approx(100.0)
    network.sleep_idle_links(keep_active=[("a", "b"), ("b", "d")])
    assert network.power_percent() < 100.0


# --------------------------------------------------------------------- #
# Demand profiles
# --------------------------------------------------------------------- #
def test_constant_and_stepped_demand():
    constant = constant_demand(mbps(5))
    assert constant(0.0) == constant(100.0) == mbps(5)
    stepped = stepped_demand([(0.0, 1.0), (10.0, 3.0), (20.0, 2.0)])
    assert stepped(-1.0) == 0.0
    assert stepped(5.0) == 1.0
    assert stepped(10.0) == 3.0
    assert stepped(25.0) == 2.0


# --------------------------------------------------------------------- #
# Rate allocation
# --------------------------------------------------------------------- #
def test_allocation_caps_at_demand(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    flow = Flow("f1", "a", "d", constant_demand(mbps(30)), path=Path.of(["a", "b", "d"]))
    network.allocate_rates([flow], now_s=0.0)
    assert flow.rate_bps == pytest.approx(mbps(30))
    assert network.arc_load("a", "b") == pytest.approx(mbps(30))
    assert network.arc_utilisation("a", "b") == pytest.approx(0.3)


def test_allocation_shares_bottleneck_fairly(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    path = Path.of(["a", "b", "d"])
    flows = [
        Flow("big", "a", "d", constant_demand(mbps(90)), path=path),
        Flow("small", "a", "d", constant_demand(mbps(20)), path=path),
    ]
    network.allocate_rates(flows, now_s=0.0)
    # Max-min: the small flow gets its full demand, the big one the rest.
    assert flows[1].rate_bps == pytest.approx(mbps(20), rel=1e-3)
    assert flows[0].rate_bps == pytest.approx(mbps(80), rel=1e-3)
    assert network.path_max_utilisation(path) == pytest.approx(1.0, rel=1e-3)


def test_allocation_zero_for_unusable_paths(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    path = Path.of(["a", "b", "d"])
    flow = Flow("f1", "a", "d", constant_demand(mbps(10)), path=path)
    network.fail_link("a", "b")
    network.allocate_rates([flow], now_s=0.0)
    assert flow.rate_bps == 0.0
    unrouted = Flow("f2", "a", "d", constant_demand(mbps(10)), path=None)
    network.allocate_rates([unrouted], now_s=0.0)
    assert unrouted.rate_bps == 0.0


def test_path_queries(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    path = Path.of(["a", "b", "d"])
    assert network.path_is_usable(path)
    assert not network.path_has_failure(path)
    network.fail_link("b", "d")
    assert not network.path_is_usable(path)
    assert network.path_has_failure(path)
    assert network.path_rtt(path) == pytest.approx(0.004)
    assert network.max_rtt() > 0


# --------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------- #
class _StaticController:
    """Assigns each flow its shortest path once and never changes it."""

    def initialise(self, network, flows, now_s):
        for flow in flows:
            nodes = network.topology.shortest_path(flow.origin, flow.destination)
            flow.path = Path.of(nodes)

    def control(self, network, flows, now_s):
        return None


def test_engine_runs_and_samples(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    flows = [Flow("f1", "a", "d", constant_demand(mbps(10)))]
    engine = SimulationEngine(
        network, flows, _StaticController(), time_step_s=0.1, sample_interval_s=0.2
    )
    result = engine.run(duration_s=1.0)
    assert len(result.samples) >= 5
    assert result.final_sample().total_rate_bps == pytest.approx(mbps(10))
    assert result.times() == sorted(result.times())
    assert max(result.series("total_demand_bps")) == pytest.approx(mbps(10))
    assert result.flow_rate_series("f1")[-1] == pytest.approx(mbps(10))


def test_engine_applies_scheduled_failures(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    flows = [Flow("f1", "a", "d", constant_demand(mbps(10)))]
    failures = FailureSchedule().fail_at(0.5, "a", "b").repair_at(1.5, "a", "b")
    engine = SimulationEngine(
        network,
        flows,
        _StaticController(),
        time_step_s=0.1,
        failures=failures,
        monitored_arcs=[("a", "b")],
    )
    result = engine.run(duration_s=2.0)
    rates = result.flow_rate_series("f1")
    times = result.times()
    failed_window = [rate for time, rate in zip(times, rates, strict=True) if 0.6 <= time <= 1.4]
    recovered = [rate for time, rate in zip(times, rates, strict=True) if time >= 1.6]
    assert all(rate == 0.0 for rate in failed_window)
    assert recovered[-1] == pytest.approx(mbps(10))
    assert len(result.arc_load_series("a", "b")) == len(times)


def test_engine_validation(diamond, cisco_model):
    network = SimulatedNetwork(diamond, cisco_model)
    flows = [
        Flow("dup", "a", "d", constant_demand(1.0)),
        Flow("dup", "a", "d", constant_demand(1.0)),
    ]
    with pytest.raises(SimulationError):
        SimulationEngine(network, flows, _StaticController())
    with pytest.raises(SimulationError):
        SimulationEngine(network, [], _StaticController(), time_step_s=0.0)
    engine = SimulationEngine(network, [], _StaticController())
    with pytest.raises(SimulationError):
        engine.run(duration_s=0.0)


def test_failure_schedule_due_and_validation():
    schedule = FailureSchedule().fail_at(1.0, "a", "b").repair_at(2.0, "a", "b")
    assert len(schedule) == 2
    due = schedule.due(0.5, 1.5)
    assert len(due) == 1
    assert due[0].kind == "fail"
    assert [event.kind for event in schedule.events()] == ["fail", "repair"]

    from repro.simulator import LinkEvent

    with pytest.raises(SimulationError):
        LinkEvent(1.0, ("a", "b"), "explode")
