"""Tests for the routing substrate: paths, tables, OSPF, ECMP, k-SP, MCF."""

import pytest

from repro.exceptions import PathNotFoundError, RoutingError
from repro.routing import (
    Path,
    RoutingConfiguration,
    RoutingTable,
    ecmp_active_elements,
    ecmp_link_loads,
    ecmp_max_utilisation,
    equal_cost_paths,
    is_demand_feasible,
    is_feasible,
    k_shortest_paths,
    k_shortest_paths_all_pairs,
    link_loads,
    link_utilisations,
    max_link_utilisation,
    ospf_delays,
    ospf_invcap_routing,
    ospf_latency_routing,
    path_diversity,
    solve_mcf,
    uncovered_pairs,
)
from repro.topology import Topology
from repro.traffic import TrafficMatrix
from repro.units import mbps


# --------------------------------------------------------------------- #
# Path and RoutingTable
# --------------------------------------------------------------------- #
def test_path_basics(diamond):
    path = Path.of(["a", "b", "d"])
    assert path.origin == "a"
    assert path.destination == "d"
    assert path.num_hops == 2
    assert path.arc_keys() == [("a", "b"), ("b", "d")]
    assert path.link_keys() == [("a", "b"), ("b", "d")]
    assert path.latency(diamond) == pytest.approx(0.002)
    assert path.bottleneck_capacity(diamond) == mbps(100)
    assert path.is_valid(diamond)
    assert list(path) == ["a", "b", "d"]
    assert len(path) == 3


def test_path_rejects_duplicates_and_empty():
    with pytest.raises(RoutingError):
        Path.of(["a", "b", "a"])
    with pytest.raises(RoutingError):
        Path(())


def test_path_shares_link_with():
    first = Path.of(["a", "b", "d"])
    second = Path.of(["a", "c", "d"])
    third = Path.of(["d", "b", "a"])
    assert not first.shares_link_with(second)
    assert first.shares_link_with(third)  # undirected sharing


def test_routing_table_construction_and_queries(diamond):
    table = RoutingTable({("a", "d"): ["a", "b", "d"], ("d", "a"): Path.of(["d", "c", "a"])})
    assert table.has_path("a", "d")
    assert table.path("a", "d").nodes == ("a", "b", "d")
    assert table.get("a", "b") is None
    assert len(table) == 2
    assert ("a", "d") in table
    assert table.used_nodes() == {"a", "b", "c", "d"}
    assert ("a", "b") in table.used_links()
    assert table.validate(diamond)
    with pytest.raises(RoutingError):
        table.path("a", "b")


def test_routing_table_rejects_mismatched_pair():
    with pytest.raises(RoutingError):
        RoutingTable({("a", "d"): ["a", "b", "c"]})


def test_routing_table_merge_and_restrict():
    first = RoutingTable({("a", "d"): ["a", "b", "d"]})
    second = RoutingTable({("a", "d"): ["a", "c", "d"], ("d", "a"): ["d", "b", "a"]})
    merged = first.merged_with(second)
    assert merged.path("a", "d").nodes == ("a", "c", "d")  # other wins
    assert len(merged) == 2
    restricted = merged.restricted_to([("d", "a")])
    assert len(restricted) == 1


def test_link_loads_and_utilisation(diamond, diamond_demands):
    table = RoutingTable({("a", "d"): ["a", "b", "d"], ("d", "a"): ["d", "c", "a"]})
    loads = link_loads(diamond, table, diamond_demands)
    assert loads[("a", "b")] == pytest.approx(mbps(40))
    assert loads[("d", "c")] == pytest.approx(mbps(10))
    assert loads[("b", "a")] == 0.0
    utilisations = link_utilisations(diamond, table, diamond_demands)
    assert utilisations[("a", "b")] == pytest.approx(0.4)
    assert max_link_utilisation(diamond, table, diamond_demands) == pytest.approx(0.4)
    assert is_feasible(diamond, table, diamond_demands)
    assert not is_feasible(diamond, table, diamond_demands.scaled(3.0))


def test_uncovered_pairs(diamond, diamond_demands):
    table = RoutingTable({("a", "d"): ["a", "b", "d"]})
    assert uncovered_pairs(table, diamond_demands) == [("d", "a")]


def test_routing_configuration_equality_and_dominance(diamond, diamond_demands):
    table = RoutingTable({("a", "d"): ["a", "b", "d"], ("d", "a"): ["d", "c", "a"]})
    config_all = RoutingConfiguration.from_routing(table)
    config_demand = RoutingConfiguration.from_routing(table, demands=diamond_demands)
    assert config_all == config_demand
    # With demand only on one pair the other pair's elements may sleep.
    partial_demand = TrafficMatrix({("a", "d"): 0.0, ("d", "a"): 1.0})
    config_partial = RoutingConfiguration.from_routing(table, demands=partial_demand)
    assert config_partial != config_all
    assert hash(config_all) == hash(config_demand)
    # Explicit always-on nodes are added unconditionally.
    augmented = RoutingConfiguration.from_routing(
        table, demands=partial_demand, always_on_nodes=["b"]
    )
    assert "b" in augmented.active_nodes


# --------------------------------------------------------------------- #
# OSPF, ECMP, k-shortest paths
# --------------------------------------------------------------------- #
def test_ospf_invcap_prefers_high_capacity():
    topo = Topology()
    for name in "xyz":
        topo.add_node(name)
    topo.add_link("x", "z", capacity_bps=mbps(10))      # direct but slow
    topo.add_link("x", "y", capacity_bps=mbps(1000))
    topo.add_link("y", "z", capacity_bps=mbps(1000))
    routing = ospf_invcap_routing(topo, pairs=[("x", "z")])
    assert routing.path("x", "z").nodes == ("x", "y", "z")


def test_ospf_routing_covers_all_pairs(geant):
    routing = ospf_invcap_routing(geant)
    assert len(routing) == 23 * 22
    assert routing.validate(geant)


def test_ospf_latency_routing_and_delays(diamond):
    routing = ospf_latency_routing(diamond, pairs=[("a", "d")])
    assert routing.path("a", "d").nodes == ("a", "b", "d")
    delays = ospf_delays(diamond, pairs=[("a", "d")])
    assert delays[("a", "d")] > 0


def test_ospf_unreachable_raises():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(PathNotFoundError):
        ospf_invcap_routing(topo, pairs=[("a", "b")])


def test_ecmp_splits_over_equal_paths(diamond):
    paths = equal_cost_paths(diamond, "a", "d", weight="hops")
    assert len(paths) == 2
    demands = TrafficMatrix({("a", "d"): mbps(80)})
    loads = ecmp_link_loads(diamond, demands, weight="hops")
    assert loads[("a", "b")] == pytest.approx(mbps(40))
    assert loads[("a", "c")] == pytest.approx(mbps(40))
    assert ecmp_max_utilisation(diamond, demands, weight="hops") == pytest.approx(0.4)


def test_ecmp_active_elements_cover_everything_used(diamond):
    demands = TrafficMatrix({("a", "d"): mbps(10)})
    nodes, links = ecmp_active_elements(diamond, demands)
    assert nodes == {"a", "b", "c", "d"}
    assert len(links) == 4


def test_k_shortest_paths_ordering(diamond):
    paths = k_shortest_paths(diamond, "a", "d", k=3, weight="latency")
    assert len(paths) == 2  # only two simple paths exist
    assert paths[0].nodes == ("a", "b", "d")
    with pytest.raises(ValueError):
        k_shortest_paths(diamond, "a", "d", k=0)


def test_k_shortest_paths_all_pairs_and_diversity(diamond):
    candidates = k_shortest_paths_all_pairs(diamond, 2, pairs=[("a", "d"), ("b", "c")])
    assert len(candidates[("a", "d")]) == 2
    assert path_diversity(diamond, "a", "d") == 2
    assert path_diversity(diamond, "a", "a") == 0 or True  # degenerate query tolerated


# --------------------------------------------------------------------- #
# Multi-commodity flow
# --------------------------------------------------------------------- #
def test_mcf_feasible_and_loads(diamond):
    demands = TrafficMatrix({("a", "d"): mbps(150)})
    result = solve_mcf(diamond, demands)
    # 150 Mb/s does not fit on one 100 Mb/s path but fits on two.
    assert result.feasible
    assert result.max_utilisation <= 1.0 + 1e-6
    assert sum(result.arc_loads[key] for key in [("a", "b"), ("a", "c")]) == pytest.approx(
        mbps(150), rel=1e-6
    )


def test_mcf_infeasible_when_capacity_exceeded(diamond):
    demands = TrafficMatrix({("a", "d"): mbps(250)})
    assert not is_demand_feasible(diamond, demands)


def test_mcf_respects_active_subset(diamond):
    demands = TrafficMatrix({("a", "d"): mbps(150)})
    assert not is_demand_feasible(diamond, demands, active_links=[("a", "b"), ("b", "d")])
    assert is_demand_feasible(
        diamond, demands.scaled(0.5), active_links=[("a", "b"), ("b", "d")]
    )


def test_mcf_infeasible_when_endpoint_inactive(diamond):
    demands = TrafficMatrix({("a", "d"): mbps(1)})
    result = solve_mcf(diamond, demands, active_nodes=["a", "b", "c"])
    assert not result.feasible


def test_mcf_empty_demand_is_trivially_feasible(diamond):
    result = solve_mcf(diamond, TrafficMatrix.zero())
    assert result.feasible
    assert result.max_utilisation == 0.0


def test_mcf_utilisation_limit(diamond):
    demands = TrafficMatrix({("a", "d"): mbps(150)})
    assert is_demand_feasible(diamond, demands, utilisation_limit=1.0)
    assert not is_demand_feasible(diamond, demands, utilisation_limit=0.5)
