# lint-as: src/repro/scenario/latency.py
"""REP101 fixture: an intentional, documented clock read."""
import time


def measure():
    # repro: allow[REP101] compute-latency proxy, stripped from canonical dumps
    t0 = time.perf_counter()  # expect-suppressed: REP101
    return t0
