# lint-as: src/repro/simulator/flows.py
"""REP103 scope fixture: raw sums are fine off the ordered hot path."""


def offered_load(demands):
    return demands.sum()
