# lint-as: src/repro/campaign/profiled.py
"""REP303 fixture: a documented span-object hand-off."""
from repro.obs import trace


def probe():
    # repro: allow[REP303] microbenchmark reuses one span deliberately
    held = trace.span("campaign.probe")  # expect-suppressed: REP303
    return held
