# lint-as: src/repro/service/shutdown.py
"""REP401 fixture: documented swallow-everything on interpreter teardown."""


def close_all(sockets):
    for sock in sockets:
        try:
            sock.close()
        # repro: allow[REP401, REP402] interpreter teardown; nowhere to record
        except:  # expect-suppressed: REP401, REP402
            pass
