# lint-as: src/repro/core/planner.py
"""REP303 fixture: span() must be the context-manager expression."""
from repro.obs import trace
from repro.obs.trace import span


def plan(topology):
    held = trace.span("core.plan")  # expect: REP303
    with held:
        pass
    with trace.span("core.plan", nodes=len(topology)):
        pass
    with span("core.plan.inner"):
        pass
    return leak()


def leak():
    return span("core.leak")  # expect: REP303
