# lint-as: src/repro/simulator/fairness.py
"""REP103 fixture: raw sums on the ordered-reduction hot path."""
import numpy as np


def reductions(rates, active):
    total = np.sum(rates)  # expect: REP103
    level = rates.sum()  # expect: REP103
    count = int(active.sum())
    return total, level, count
