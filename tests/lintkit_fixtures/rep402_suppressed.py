# lint-as: src/repro/service/closers.py
"""REP402 fixture: a documented best-effort close."""


def best_effort_close(handle):
    try:
        handle.close()
    # repro: allow[REP402] best-effort close on shutdown; nothing to record
    except Exception:  # expect-suppressed: REP402
        pass
