# lint-as: src/repro/power/meters.py
"""REP302 fixture: dynamically built metric names."""
from repro.obs import metrics

STATIC = metrics.counter("power_updates_total", "Power model updates")


def dynamic(variant):
    name = "power_" + variant + "_total"
    return metrics.counter(name)  # expect: REP302
