# lint-as: src/repro/traffic/jitter.py
"""REP102 fixture: unseeded randomness in engine code."""
import random

import numpy as np


def noisy():
    a = random.random()  # expect: REP102
    b = np.random.rand(3)  # expect: REP102
    rng = np.random.default_rng()  # expect: REP102
    return a, b, rng


def seeded(seed):
    rng = np.random.default_rng(seed)
    explicit = random.Random(seed)
    return rng, explicit
