# lint-as: src/repro/routing/mcf.py
"""REP103 fixture: a documented diagnostic-only reduction."""
import numpy as np


def debug_total(weights):
    # repro: allow[REP103] diagnostic log line only; never feeds results
    return np.sum(weights)  # expect-suppressed: REP103
