# lint-as: src/repro/campaign/status.py
"""REP202 fixture: CampaignStore opened without explicit intent."""
from repro.campaign.store import CampaignStore


def implicit(path):
    return CampaignStore(path)  # expect: REP202


def explicit(path):
    reader = CampaignStore(path, read_only=True)
    writer = CampaignStore(path, read_only=False)
    return reader, writer
