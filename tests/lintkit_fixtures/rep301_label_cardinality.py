# lint-as: src/repro/service/handlers.py
"""REP301 fixture: interpolated metric label values."""
from repro.obs import metrics

REQUESTS = metrics.counter("svc_requests_total")


def record(campaign_id, route):
    REQUESTS.labels(route=f"/campaigns/{campaign_id}").inc()  # expect: REP301
    REQUESTS.labels(route="/campaigns").inc()
    REQUESTS.labels(route=route_class(route)).inc()


def route_class(route):
    return "/campaigns/{id}" if route.startswith("/campaigns/") else route
