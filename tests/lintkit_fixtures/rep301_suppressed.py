# lint-as: src/repro/service/stats.py
"""REP301 fixture: an interpolated label over a provably closed set."""
from repro.obs import metrics

HITS = metrics.counter("stats_hits_total")


def bounded(shard):
    # repro: allow[REP301] shard ids are a closed 4-element set
    HITS.labels(shard=f"shard-{shard}").inc()  # expect-suppressed: REP301
