# lint-as: src/repro/campaign/timing.py
"""Scope fixture: orchestration layers may read clocks and draw entropy."""
import random
import time


def stamp():
    return time.time(), random.random()
