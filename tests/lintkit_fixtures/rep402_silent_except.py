# lint-as: src/repro/service/loop.py
"""REP402 fixture: silently swallowed broad exceptions."""


def drain(points, log):
    for point in points:
        try:
            point.run()
        except Exception:  # expect: REP402
            continue
    try:
        points.flush()
    except (ValueError, Exception):  # expect: REP402
        pass
    try:
        points.close()
    except Exception as error:
        log.error("close failed: %s", error)
