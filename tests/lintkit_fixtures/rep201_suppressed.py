# lint-as: src/repro/campaign/migrate.py
"""REP201 fixture: a documented one-shot schema bootstrap."""


class Migrations:
    def bootstrap(self):
        # repro: allow[REP201] one-shot bootstrap on a fresh private database
        self.connection.executescript("UPDATE meta SET version = 2")  # expect-suppressed: REP201
