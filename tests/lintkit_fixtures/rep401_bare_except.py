# lint-as: src/repro/campaign/lease.py
"""REP401 fixture: bare excepts in worker loops."""


def renew(lease):
    try:
        lease.renew()
    except:  # expect: REP401, REP402
        pass


def heartbeat(lease, log):
    try:
        lease.renew()
    except:  # expect: REP401
        log.warning("renew failed")


def typed(lease, log):
    try:
        lease.renew()
    except OSError:
        log.warning("renew failed")
