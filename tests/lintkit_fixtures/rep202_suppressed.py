# lint-as: src/repro/campaign/compat.py
"""REP202 fixture: a documented back-compat open."""
from repro.campaign.store import CampaignStore


def legacy_open(path):
    # repro: allow[REP202] back-compat shim; callers predate the intent flag
    return CampaignStore(path)  # expect-suppressed: REP202
