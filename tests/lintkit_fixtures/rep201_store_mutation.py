# lint-as: src/repro/campaign/storeops.py
"""REP201 fixture: store mutations outside the transaction helper."""


class Store:
    def rogue(self):
        self.connection.execute("INSERT INTO points VALUES (1)")  # expect: REP201

    def persist(self, record):
        with self.transaction() as connection:
            connection.execute("UPDATE points SET state = ?", (record,))

    def read(self):
        return self.connection.execute("SELECT state FROM points").fetchall()


def helper(connection, rows):
    # Receives the connection: the caller owns the BEGIN IMMEDIATE block.
    connection.executemany("INSERT INTO points VALUES (?)", rows)
