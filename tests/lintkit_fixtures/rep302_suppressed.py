# lint-as: src/repro/power/meters_compat.py
"""REP302 fixture: a documented dynamic family for a fixed variant set."""
from repro.obs import metrics

VARIANTS = ("always_on", "response")


def per_variant(variant):
    # repro: allow[REP302] variant names are the fixed 2-element tuple above
    return metrics.counter("power_" + variant + "_total")  # expect-suppressed: REP302
