# lint-as: src/repro/simulator/clockuser.py
"""REP101 fixture: wall-clock reads in deterministic engine code."""
import time
from datetime import datetime


def stamp():
    started = time.time()  # expect: REP101
    mono = time.perf_counter()  # expect: REP101
    today = datetime.now()  # expect: REP101
    return started, mono, today


def clean(duration_s):
    # Arithmetic on a passed-in duration is fine; only clock *reads* trip.
    return duration_s * 2.0
