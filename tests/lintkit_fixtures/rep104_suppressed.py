# lint-as: src/repro/topology/prune.py
"""REP104 fixture: set iteration whose result is itself a set."""


def endpoints(links):
    pairs = {(u, v) for (u, v) in links}
    nodes = set()
    # repro: allow[REP104] result is itself a set; order cannot leak
    for u, v in pairs:  # expect-suppressed: REP104
        nodes.add(u)
        nodes.add(v)
    return nodes
