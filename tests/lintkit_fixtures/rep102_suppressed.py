# lint-as: src/repro/traffic/shuffle.py
"""REP102 fixture: a documented non-result random draw."""
import random


def salt():
    # repro: allow[REP102] temp-file name salt; never feeds results
    return random.random()  # expect-suppressed: REP102
