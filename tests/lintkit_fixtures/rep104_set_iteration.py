# lint-as: src/repro/routing/origins.py
"""REP104 fixture: iterating unordered sets in engine code."""


def spread(nodes, extras):
    origins = {node for node in nodes}
    merged = origins | set(extras)
    for origin in merged:  # expect: REP104
        yield origin
    for literal in {"a", "b"}:  # expect: REP104
        yield literal
    names = [name for name in set(nodes)]  # expect: REP104
    for ordered in sorted(merged):
        yield ordered
    yield from names
