"""Tests for the event-driven timeline engine and the events axis."""

import json

import pytest

from repro.core.failover import compute_failover
from repro.exceptions import ConfigurationError
from repro.experiments.runner import main
from repro.routing.paths import Path, RoutingTable
from repro.scenario import (
    EventSpec,
    PowerSpec,
    ScenarioResult,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
    build_timeline,
    failure_schedule,
    register,
    run_scenario,
)
from repro.scenario.schemes import SchemeOutcome, greente_replay
from repro.simulator.failures import FailureSchedule, NodeEvent, TopologyView
from repro.topology.base import Topology


def line_topology(*names, capacity=1e9):
    topo = Topology("line")
    for name in names:
        topo.add_node(name)
    for u, v in zip(names, names[1:], strict=False):
        topo.add_link(u, v, capacity_bps=capacity)
    return topo


def geant_failure_spec(**overrides):
    """A small GEANT scenario with a mid-trace link failure."""
    settings = dict(
        name="geant-failure",
        topology=TopologySpec("geant"),
        traffic=TrafficSpec(
            "gravity",
            num_pairs=12,
            num_endpoints=6,
            seed=1,
            calibrate=True,
            levels=[0.25, 0.5, 1.0],
        ),
        power=PowerSpec("cisco"),
        schemes=(SchemeSpec("response", num_paths=3, k=3), SchemeSpec("greente")),
        events=(EventSpec("link-failure", time_s=900.0, link=["DE", "FR"]),),
    )
    settings.update(overrides)
    return ScenarioSpec(**settings)


# --------------------------------------------------------------------- #
# FailureSchedule.due boundary semantics
# --------------------------------------------------------------------- #


def test_due_event_exactly_at_interval_edge_fires_once_never_twice():
    schedule = FailureSchedule().fail_at(900.0, "a", "b")
    windows = [(-float("inf"), 0.0), (0.0, 900.0), (900.0, 1800.0), (1800.0, 2700.0)]
    fired = [len(schedule.due(prev, now)) for prev, now in windows]
    assert fired == [0, 1, 0, 0]  # in the window it closes, once


def test_due_event_within_drift_tolerance_of_edge_fires_once():
    # An event nominally at an edge but drifted past it by accumulated float
    # error must still fire exactly once across contiguous windows.
    drifted = 900.0 + 5e-13
    schedule = FailureSchedule().fail_at(drifted, "a", "b")
    first = schedule.due(0.0, 900.0)
    second = schedule.due(900.0, 1800.0)
    assert len(first) + len(second) == 1
    assert len(first) == 1  # tolerated as "at the 900s edge"


def test_due_event_at_window_open_does_not_refire():
    schedule = FailureSchedule().fail_at(900.0, "a", "b")
    assert schedule.due(900.0, 1800.0) == []


def test_node_repair_does_not_clobber_independent_link_failure(diamond, cisco_model):
    from repro.simulator import LinkState, SimulatedNetwork, SimulationEngine

    class _Idle:
        def initialise(self, network, flows, now_s):
            pass

        def control(self, network, flows, now_s):
            pass

    network = SimulatedNetwork(diamond, cisco_model)
    # Link a-b fails on its own at t=1; node a fails at t=2 and is repaired
    # at t=3.  The node repair must NOT resurrect a-b (still failed on its
    # own) while a's other incident links come back.
    failures = (
        FailureSchedule()
        .fail_at(1.0, "a", "b")
        .fail_node_at(2.0, "a")
        .repair_node_at(3.0, "a")
    )
    engine = SimulationEngine(
        network, [], _Idle(), time_step_s=0.5, failures=failures
    )
    engine.run(duration_s=4.0)
    assert network.link("a", "b").state == LinkState.FAILED
    assert network.link("a", "c").state == LinkState.ACTIVE
    schedule = (
        FailureSchedule()
        .fail_at(2.0, "a", "b")
        .fail_node_at(1.0, "c")
        .repair_node_at(3.0, "c")
    )
    events = schedule.events()
    assert [event.time_s for event in events] == [1.0, 2.0, 3.0]
    assert isinstance(events[0], NodeEvent)
    assert len(schedule) == 3


# --------------------------------------------------------------------- #
# TopologyView
# --------------------------------------------------------------------- #


def test_topology_view_without_failures_is_the_base_object():
    topo = line_topology("a", "b", "c")
    view = TopologyView(topo)
    assert view.topology is topo  # identity keeps per-topology caches warm
    assert not view.has_failures
    assert view.connected_pairs([("a", "c")]) == [("a", "c")]


def test_topology_view_failed_link_and_node():
    topo = line_topology("a", "b", "c", "d")
    view = TopologyView(topo, failed_links=[("c", "b")])
    assert view.failed_links == {("b", "c")}  # canonicalised
    assert not view.topology.has_link("b", "c")
    assert view.connected_pairs([("a", "b"), ("a", "d")]) == [("a", "b")]
    assert not view.path_usable(Path.of(["a", "b", "c"]))

    node_view = TopologyView(topo, failed_nodes=["b"])
    assert node_view.unusable_links() == {("a", "b"), ("b", "c")}
    assert "b" not in node_view.topology.nodes()


# --------------------------------------------------------------------- #
# compute_failover under disconnection
# --------------------------------------------------------------------- #


def test_compute_failover_skips_disconnected_pairs():
    topo = line_topology("a", "b", "c")
    table = RoutingTable({("a", "c"): Path.of(["a", "b", "c"])}, name="always-on")
    # On the intact line there is no disjoint alternative: the failover path
    # is the least-overlapping one, i.e. the same line.
    intact = compute_failover(topo, [table], pairs=[("a", "c")])
    assert intact.get("a", "c") is not None

    view = TopologyView(topo, failed_links=[("b", "c")])
    degraded = compute_failover(view.topology, [table], pairs=[("a", "c")])
    assert degraded.get("a", "c") is None  # disconnected pair skipped, no crash
    assert degraded.pairs() == []


# --------------------------------------------------------------------- #
# Events axis: specs, hashing, registry
# --------------------------------------------------------------------- #


def test_event_spec_round_trips_and_hash_covers_events():
    spec = geant_failure_spec()
    rebuilt = ScenarioSpec.from_dict(json.loads(spec.to_json()))
    assert rebuilt == spec
    assert rebuilt.config_hash() == spec.config_hash()

    event_free = spec.with_events()
    assert event_free.config_hash() != spec.config_hash()
    moved = spec.with_events(
        EventSpec("link-failure", time_s=1800.0, link=["DE", "FR"])
    )
    assert moved.config_hash() != spec.config_hash()
    # Event-free specs keep the historical dict shape (no empty events key).
    assert "events" not in event_free.to_dict()


def test_unknown_event_kind_rejected_with_registered_names():
    spec = geant_failure_spec(events=(EventSpec("meteor-strike", time_s=1.0),))
    with pytest.raises(ConfigurationError, match="unknown event component"):
        spec.validate()


def test_event_builders_validate_their_windows():
    with pytest.raises(ConfigurationError, match="repair_s"):
        EventSpec("link-failure", time_s=10.0, link=["a", "b"], repair_s=5.0).build()
    with pytest.raises(ConfigurationError, match="window is empty"):
        EventSpec("traffic-surge", start_s=10.0, end_s=10.0).build()


def test_failure_schedule_from_event_specs():
    events = (
        EventSpec("link-failure", time_s=5.7, link=["E", "H"], repair_s=9.0),
        EventSpec("traffic-surge", start_s=1.0, factor=2.0),  # no simulator form
        EventSpec("node-failure", time_s=2.0, node="A"),
    )
    schedule = failure_schedule(events)
    kinds = [(type(event).__name__, event.kind) for event in schedule.events()]
    assert kinds == [
        ("NodeEvent", "fail"),
        ("LinkEvent", "fail"),
        ("LinkEvent", "repair"),
    ]


# --------------------------------------------------------------------- #
# The timeline itself
# --------------------------------------------------------------------- #


def test_build_timeline_applies_failures_and_surges():
    spec = geant_failure_spec(
        events=(
            EventSpec("link-failure", time_s=900.0, link=["DE", "FR"], repair_s=1800.0),
            EventSpec("traffic-surge", start_s=900.0, end_s=1800.0, factor=2.0),
        )
    )
    built = build_scenario(spec)
    timeline = build_timeline(built.topology, built.trace, built.spec.events)
    assert len(timeline) == 3
    first, second, third = timeline.steps
    assert not first.view.has_failures
    assert second.view.failed_links == {("DE", "FR")}
    assert not third.view.has_failures  # repaired
    # The repaired view is the base topology again (same cached object).
    assert third.view is first.view
    # Surge doubles demand during [900, 1800) only.
    assert second.matrix.total_bps == pytest.approx(
        2.0 * built.trace[1].total_bps
    )
    assert third.matrix.total_bps == pytest.approx(built.trace[2].total_bps)
    fired_kinds = [record["kind"] for record in timeline.fired_records()]
    assert fired_kinds == ["link-failure", "traffic-surge", "link-repair"]


def test_event_targeting_unknown_element_is_rejected():
    spec = geant_failure_spec(
        events=(EventSpec("link-failure", time_s=0.0, link=["DE", "MARS"]),)
    )
    with pytest.raises(ConfigurationError, match="unknown link"):
        run_scenario(spec)
    node_spec = geant_failure_spec(
        events=(EventSpec("node-failure", time_s=0.0, node="MARS"),)
    )
    with pytest.raises(ConfigurationError, match="unknown node"):
        run_scenario(node_spec)
    # Validation is eager: a typoed event scheduled past the trace end
    # (which would never fire) must still be rejected, not silently turn
    # the run event-free.
    late_spec = geant_failure_spec(
        events=(EventSpec("link-failure", time_s=1e9, link=["DE", "MARS"]),)
    )
    with pytest.raises(ConfigurationError, match="unknown link"):
        run_scenario(late_spec)


def test_stress_ablation_rejects_traffic_surges():
    from repro.experiments.stress_ablation import run_stress_ablation

    with pytest.raises(ConfigurationError, match="only supports topology events"):
        run_stress_ablation(
            fractions=(0.2,),
            num_pairs=4,
            num_endpoints=3,
            events=[{"name": "traffic-surge", "params": {"start_s": 0.0}}],
        )


def test_event_before_trace_start_applies_to_first_interval():
    spec = geant_failure_spec(
        events=(EventSpec("link-failure", time_s=0.0, link=["DE", "FR"]),)
    )
    built = build_scenario(spec)
    timeline = build_timeline(built.topology, built.trace, built.spec.events)
    assert timeline.steps[0].view.failed_links == {("DE", "FR")}


# --------------------------------------------------------------------- #
# run_scenario over an eventful timeline (the acceptance scenario)
# --------------------------------------------------------------------- #


def test_run_scenario_with_link_failure_reports_reaction_metrics():
    result = run_scenario(geant_failure_spec())
    assert [event["kind"] for event in result.events] == ["link-failure"]
    for label in ("response", "greente"):
        assert len(result.power_percent[label]) == 3
        assert len(result.compute_seconds[label]) == 3
        assert all(value >= 0.0 for value in result.compute_seconds[label])
    # Post-failure utilisation is reported for the activation-based scheme.
    reaction = result.reaction["response"]
    assert len(reaction) == 1
    record = reaction[0]
    assert record["kind"] == "link-failure"
    assert record["interval_index"] == 1
    assert record["max_utilisation"] is not None
    assert record["power_percent"] == result.power_percent["response"][1]
    assert isinstance(record["violation"], bool)
    assert record["compute_seconds"] >= 0.0
    # The REsPoNse plan is precomputed: no recomputation even under failure
    # (its failover table was built offline).
    assert result.recomputations["response"] == 0
    # The JSON view round-trips (the --output file format).
    round_tripped = ScenarioResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert round_tripped.to_dict() == result.to_dict()


def test_node_failure_changes_ospf_power():
    spec = geant_failure_spec(
        schemes=(SchemeSpec("ospf"),),
        events=(EventSpec("node-failure", time_s=900.0, node="DE"),),
    )
    result = run_scenario(spec)
    series = result.power_percent["ospf"]
    assert series[0] == 100.0
    assert series[1] < 100.0  # the failed node and its links stop drawing power
    assert result.reaction["ospf"][0]["kind"] == "node-failure"


def test_event_free_timeline_is_bit_identical_to_cold_replay():
    """Warm-start/memoising runtimes must not change event-free results."""
    spec = geant_failure_spec(events=())
    built = build_scenario(spec)
    result = run_scenario(spec)
    # The pre-timeline greente replay: cold candidates, one solve per matrix.
    solutions = greente_replay(
        built.topology,
        built.power_model,
        built.trace.matrices(),
        k=5,
        utilisation_limit=1.0,
        pairs=built.pairs,
        ordering="stable",
    )
    expected = [
        100.0 * solution.power_w / built.baseline_power_w for solution in solutions
    ]
    assert result.power_percent["greente"] == expected  # exact, not approx


def test_run_timeline_on_interval_hook_streams_bit_identical_values():
    """The interval-major streaming pass must not change any computed value.

    The service's replay endpoint rides on ``run_timeline(on_interval=...)``;
    this pins its contract: the hook fires once per timeline step with every
    scheme's outcome for that step, and the returned run matches a plain
    scheme-major run bit-for-bit (wall-clock step timings aside).
    """
    from repro.campaign.store import canonical_result_dict
    from repro.scenario.engine import run_built_scenario

    spec = geant_failure_spec()
    built = build_scenario(spec)
    plain = run_built_scenario(built)

    seen = []

    def on_interval(step, outcomes):
        seen.append((step.index, step.time_s, dict(outcomes)))

    hooked = run_built_scenario(built, on_interval=on_interval)

    # One call per interval, in order, with every scheme present.
    assert [index for index, _, _ in seen] == list(range(len(plain.times_s)))
    assert [time_s for _, time_s, _ in seen] == plain.times_s
    assert all(set(outcomes) == {"response", "greente"} for _, _, outcomes in seen)
    # The streamed outcomes ARE the result's series (same values, live).
    for label in ("response", "greente"):
        assert [
            outcomes[label].power_percent for _, _, outcomes in seen
        ] == hooked.power_percent[label]
    # And the full result is bit-identical to the scheme-major run.
    assert canonical_result_dict(hooked.to_dict()) == canonical_result_dict(
        plain.to_dict()
    )


def test_run_timeline_on_interval_hook_event_free_identity():
    """Event-free scenarios stream identically too (no-event fast path)."""
    from repro.campaign.store import canonical_result_dict
    from repro.scenario.engine import run_built_scenario

    built = build_scenario(geant_failure_spec(events=()))
    calls = []
    hooked = run_built_scenario(built, on_interval=lambda step, o: calls.append(step))
    plain = run_built_scenario(built)
    assert len(calls) == len(plain.times_s)
    assert all(step.fired == [] for step in calls)
    assert canonical_result_dict(hooked.to_dict()) == canonical_result_dict(
        plain.to_dict()
    )


def test_solver_runtime_memoises_unchanged_intervals(monkeypatch):
    import repro.scenario.schemes as schemes_module

    calls = []
    original = schemes_module.greente_heuristic

    def counting(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(schemes_module, "greente_heuristic", counting)
    spec = geant_failure_spec(
        traffic=TrafficSpec(
            "gravity",
            num_pairs=12,
            num_endpoints=6,
            seed=1,
            calibrate=True,
            levels=[0.5, 0.5, 0.5],  # three identical intervals
        ),
        schemes=(SchemeSpec("greente"),),
        events=(),
    )
    result = run_scenario(spec)
    assert len(calls) == 1  # solved once, replayed from warm state twice
    assert len(set(result.power_percent["greente"])) == 1


def test_candidate_paths_survive_across_timeline_steps(monkeypatch):
    import repro.scenario.schemes as schemes_module

    calls = []
    original = schemes_module.k_shortest_paths_all_pairs

    def counting(topology, k, pairs=None):
        calls.append(topology.name)
        return original(topology, k, pairs=pairs)

    monkeypatch.setattr(schemes_module, "k_shortest_paths_all_pairs", counting)
    run_scenario(geant_failure_spec(schemes=(SchemeSpec("greente"),)))
    # One candidate computation on the intact topology, one on the degraded
    # view — never one per interval.
    assert calls == ["geant", "geant-degraded"]


def test_legacy_function_scheme_runs_event_free_but_rejects_events():
    @register("scheme", "_test-legacy-flat")
    def _legacy(scenario, level=42.0):
        matrices = scenario.trace.matrices()
        return SchemeOutcome(power_percent=[level for _ in matrices])

    event_free = geant_failure_spec(
        schemes=(SchemeSpec("_test-legacy-flat", level=7.0),), events=()
    )
    result = run_scenario(event_free)
    assert result.power_percent["_test-legacy-flat"] == [7.0, 7.0, 7.0]

    eventful = geant_failure_spec(schemes=(SchemeSpec("_test-legacy-flat"),))
    with pytest.raises(ConfigurationError, match="does not support dynamic events"):
        run_scenario(eventful)


# --------------------------------------------------------------------- #
# CLI: events end-to-end, --output round-trip
# --------------------------------------------------------------------- #


def test_cli_list_components_shows_event_kinds(capsys):
    assert main(["list-components", "--kind", "event"]) == 0
    output = capsys.readouterr().out
    assert "link-failure" in output
    assert "traffic-surge" in output
    assert "node-failure" in output


def test_cli_event_flag_and_events_set_overrides(tmp_path, capsys):
    output_path = tmp_path / "result.json"
    assert (
        main(
            [
                "run-scenario",
                "--topology",
                "geant",
                "--traffic",
                "gravity",
                "--power",
                "cisco",
                "--scheme",
                "response",
                "--event",
                "link-failure",
                "--set",
                "traffic.num_pairs=12",
                "--set",
                "traffic.num_endpoints=6",
                "--set",
                "traffic.calibrate=true",
                "--set",
                "traffic.levels=[0.5, 1.0]",
                "--set",
                "events.0.time_s=900",
                "--set",
                'events.0.link=["DE", "FR"]',
                "--output",
                str(output_path),
            ]
        )
        == 0
    )
    printed = capsys.readouterr().out
    assert "link-failure" in printed

    payload = json.loads(output_path.read_text())
    assert payload["spec"]["events"][0]["params"]["time_s"] == 900
    assert payload["events"] == [
        {"time_s": 900.0, "kind": "link-failure", "link": ["DE", "FR"]}
    ]
    restored = ScenarioResult.from_dict(payload)
    assert restored.to_dict() == payload  # full --output round trip
    assert restored.reaction["response"][0]["interval_index"] == 1


def test_cli_events_set_rejects_bad_index(capsys):
    with pytest.raises(SystemExit):
        main(
            [
                "run-scenario",
                "--topology",
                "geant",
                "--traffic",
                "gravity",
                "--power",
                "cisco",
                "--scheme",
                "ospf",
                "--set",
                "events.0.time_s=900",
            ]
        )
    assert "out of range" in capsys.readouterr().err


def test_traced_timeline_is_bit_identical_and_covers_every_interval(tmp_path):
    """Tracing observes the timeline without perturbing it.

    The observability layer promises that enabling span capture changes no
    computed value — only sidecar NDJSON appears — and that the sidecar
    covers the run: one ``scheme.step`` per (scheme, interval) plus the
    failure reaction spans.
    """
    from repro.campaign.store import canonical_result_dict
    from repro.obs import trace

    spec = geant_failure_spec()
    plain = run_scenario(spec)
    trace_path = tmp_path / "timeline.ndjson"
    trace.configure_tracing(trace_path)
    try:
        traced = run_scenario(spec)
    finally:
        trace.disable_tracing()
    assert canonical_result_dict(traced.to_dict()) == canonical_result_dict(
        plain.to_dict()
    )
    records = list(trace.iter_trace(trace_path))
    steps = [r for r in records if r["name"] == "scheme.step"]
    intervals = len(plain.times_s)
    per_scheme = {}
    for step in steps:
        per_scheme.setdefault(step["attrs"]["scheme"], []).append(
            step["attrs"]["interval"]
        )
    assert set(per_scheme) == {"response", "greente"}
    for scheme, seen in per_scheme.items():
        assert sorted(seen) == list(range(intervals)), scheme
    # The offline plan build was captured (failover is precomputed in it,
    # so no response.failover span fires — the plan span covers the solve).
    assert any(r["name"] == "response.plan" for r in records)
