"""Tests for the energy-aware optimisation layer (MILPs and heuristics)."""

import pytest

from repro.exceptions import InfeasibleError, SolverError
from repro.optim import (
    PathMilpConfig,
    element_power_coefficients,
    elastictree_subset,
    greedy_minimum_subset,
    greente_heuristic,
    lp_relaxation_with_rounding,
    solution_power,
    solve_arc_milp,
    solve_path_milp,
)
from repro.power import CISCO_CHASSIS_POWER_W, full_power
from repro.routing import max_link_utilisation
from repro.topology import build_example
from repro.traffic import TrafficMatrix, all_pairs
from repro.units import mbps


# --------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------- #
def test_element_power_coefficients(diamond, cisco_model):
    node_power, link_power = element_power_coefficients(diamond, cisco_model)
    assert node_power["a"] == CISCO_CHASSIS_POWER_W
    assert all(value > 0 for value in link_power.values())
    assert set(link_power) == set(diamond.link_keys())


def test_solution_power_matches_accounting(diamond, cisco_model):
    power = solution_power(diamond, cisco_model, {"a", "b"}, {("a", "b")})
    assert power == pytest.approx(2 * CISCO_CHASSIS_POWER_W + 2 * 60.0)


# --------------------------------------------------------------------- #
# Path-restricted MILP
# --------------------------------------------------------------------- #
def test_path_milp_minimises_power_on_diamond(diamond, cisco_model):
    demands = TrafficMatrix.epsilon([("a", "d"), ("d", "a")])
    solution = solve_path_milp(diamond, cisco_model, demands)
    # One two-hop path suffices; only 3 nodes and 2 links should stay on.
    assert len(solution.active_links) == 2
    assert len(solution.active_nodes) == 3
    assert solution.routing.path("a", "d").num_hops == 2
    assert solution.optimal
    assert solution.power_w < full_power(diamond, cisco_model).total_w


def test_path_milp_respects_capacity(diamond, cisco_model):
    # Two 60 Mb/s single-path flows cannot share a 100 Mb/s arc: the solver
    # must separate them even though aggregation would be cheaper.
    demands = TrafficMatrix({("a", "d"): mbps(60), ("b", "c"): mbps(60)})
    solution = solve_path_milp(diamond, cisco_model, demands)
    assert max_link_utilisation(diamond, solution.routing, demands) <= 1.0 + 1e-6
    a_d_arcs = set(solution.routing.path("a", "d").arc_keys())
    b_c_arcs = set(solution.routing.path("b", "c").arc_keys())
    assert not (a_d_arcs & b_c_arcs)


def test_path_milp_infeasible_demand_raises(diamond, cisco_model):
    demands = TrafficMatrix({("a", "d"): mbps(500)})
    with pytest.raises(InfeasibleError):
        solve_path_milp(diamond, cisco_model, demands)


def test_path_milp_latency_bound_filters_candidates(diamond, cisco_model):
    demands = TrafficMatrix.epsilon([("a", "d")])
    tight = {("a", "d"): 0.0025}  # only a-b-d (2 ms) qualifies
    solution = solve_path_milp(
        diamond, cisco_model, demands, latency_bound=tight
    )
    assert solution.routing.path("a", "d").nodes == ("a", "b", "d")


def test_path_milp_forbidden_links_avoided(diamond, cisco_model):
    demands = TrafficMatrix.epsilon([("a", "d")])
    solution = solve_path_milp(
        diamond, cisco_model, demands, forbidden_links=[("a", "b")]
    )
    assert solution.routing.path("a", "d").nodes == ("a", "c", "d")


def test_path_milp_fixed_elements_stay_on(diamond, cisco_model):
    demands = TrafficMatrix.epsilon([("a", "d")])
    solution = solve_path_milp(
        diamond,
        cisco_model,
        demands,
        fixed_on_nodes=["c"],
        fixed_on_links=[("a", "c")],
    )
    assert "c" in solution.active_nodes
    assert ("a", "c") in solution.active_links


def test_path_milp_empty_demand(diamond, cisco_model):
    solution = solve_path_milp(diamond, cisco_model, TrafficMatrix.zero())
    assert solution.active_links == set()
    assert len(solution.routing) == 0


def test_path_milp_relaxed_mode_still_routes(diamond, cisco_model):
    demands = TrafficMatrix({("a", "d"): mbps(10)})
    config = PathMilpConfig(integral_paths=False)
    solution = solve_path_milp(diamond, cisco_model, demands, config=config)
    assert solution.routing.path("a", "d").is_valid(diamond)
    assert not solution.optimal


# --------------------------------------------------------------------- #
# Exact arc-based MILP
# --------------------------------------------------------------------- #
def test_arc_milp_matches_path_milp_on_example(cisco_model):
    topology = build_example(include_b=False)
    pairs = [("A", "K"), ("C", "K")]
    demands = TrafficMatrix.epsilon(pairs)
    arc_solution = solve_arc_milp(topology, cisco_model, demands)
    path_solution = solve_path_milp(topology, cisco_model, demands)
    assert arc_solution.power_w == pytest.approx(path_solution.power_w, rel=1e-6)
    # Both share the always-on style aggregation through E-H-K.
    assert arc_solution.routing.path("A", "K").nodes == ("A", "E", "H", "K")


def test_arc_milp_capacity_forces_second_path(diamond, cisco_model):
    demands = TrafficMatrix({("a", "d"): mbps(90), ("d", "a"): mbps(90)})
    solution = solve_arc_milp(diamond, cisco_model, demands)
    assert max_link_utilisation(diamond, solution.routing, demands) <= 1.0 + 1e-6


def test_arc_milp_guards_against_huge_instances(geant, cisco_model):
    demands = TrafficMatrix.epsilon(all_pairs(geant.routers()))
    with pytest.raises(SolverError):
        solve_arc_milp(geant, cisco_model, demands)


# --------------------------------------------------------------------- #
# Heuristics
# --------------------------------------------------------------------- #
def test_greedy_minimum_subset_keeps_demand_feasible(diamond, cisco_model, diamond_demands):
    solution = greedy_minimum_subset(diamond, cisco_model, diamond_demands)
    assert solution.power_w <= full_power(diamond, cisco_model).total_w
    assert {"a", "d"} <= solution.active_nodes
    assert solution.routing is not None
    assert max_link_utilisation(
        diamond.subgraph(solution.active_nodes, solution.active_links),
        solution.routing,
        diamond_demands,
    ) <= 1.0 + 1e-6


def test_greedy_turns_off_unneeded_elements(diamond, cisco_model):
    demands = TrafficMatrix({("a", "d"): mbps(10)})
    solution = greedy_minimum_subset(diamond, cisco_model, demands)
    assert len(solution.active_nodes) == 3
    assert len(solution.active_links) == 2


def test_greente_heuristic_places_all_pairs(diamond, cisco_model, diamond_demands):
    solution = greente_heuristic(diamond, cisco_model, diamond_demands, k=2)
    assert set(solution.routing.pairs()) == set(diamond_demands.pairs())
    assert max_link_utilisation(diamond, solution.routing, diamond_demands) <= 1.0 + 1e-6


def test_greente_respects_capacity_or_raises(diamond, cisco_model):
    # Two 60 Mb/s flows must be kept apart (single-path routing, 100 Mb/s arcs).
    demands = TrafficMatrix({("a", "d"): mbps(60), ("b", "c"): mbps(60)})
    solution = greente_heuristic(diamond, cisco_model, demands, k=3)
    assert max_link_utilisation(diamond, solution.routing, demands) <= 1.0 + 1e-6
    huge = TrafficMatrix({("a", "d"): mbps(500)})
    with pytest.raises(InfeasibleError):
        greente_heuristic(diamond, cisco_model, huge, k=2)
    overloaded = greente_heuristic(diamond, cisco_model, huge, k=2, allow_overload=True)
    assert overloaded.routing.path("a", "d").is_valid(diamond)


def test_greente_stable_ordering_is_deterministic(diamond, cisco_model):
    demands_a = TrafficMatrix({("a", "d"): mbps(10), ("d", "a"): mbps(20)})
    demands_b = TrafficMatrix({("a", "d"): mbps(20), ("d", "a"): mbps(10)})
    first = greente_heuristic(diamond, cisco_model, demands_a, ordering="stable")
    second = greente_heuristic(diamond, cisco_model, demands_b, ordering="stable")
    assert first.active_links == second.active_links
    with pytest.raises(ValueError):
        greente_heuristic(diamond, cisco_model, demands_a, ordering="random")


def test_greente_fixed_elements_have_zero_marginal_cost(diamond, cisco_model):
    demands = TrafficMatrix({("a", "d"): mbps(1)})
    solution = greente_heuristic(
        diamond,
        cisco_model,
        demands,
        fixed_on_nodes={"a", "c", "d"},
        fixed_on_links={("a", "c"), ("c", "d")},
    )
    # The pre-paid a-c-d path is chosen because it adds no new power.
    assert solution.routing.path("a", "d").nodes == ("a", "c", "d")


def test_elastictree_subset_scales_with_load(fattree4, commodity_model):
    hosts = fattree4.nodes_at_level("host")
    low = TrafficMatrix({(hosts[0], hosts[8]): mbps(50)})
    high = TrafficMatrix(
        {(hosts[i], hosts[(i + 8) % 16]): mbps(900) for i in range(16)}
    )
    low_solution = elastictree_subset(fattree4, commodity_model, low)
    high_solution = elastictree_subset(fattree4, commodity_model, high)
    assert low_solution.power_w < high_solution.power_w
    assert low_solution.routing is not None


def test_lp_relaxation_with_rounding_feasible(diamond, cisco_model, diamond_demands):
    solution = lp_relaxation_with_rounding(diamond, cisco_model, diamond_demands)
    assert {"a", "d"} <= solution.active_nodes
    assert solution.power_w <= full_power(diamond, cisco_model).total_w
    assert not solution.optimal


def test_solution_as_dict(diamond, cisco_model, diamond_demands):
    solution = greente_heuristic(diamond, cisco_model, diamond_demands)
    summary = solution.as_dict()
    assert summary["solver"] == "greente-heuristic"
    assert summary["active_nodes"] == len(solution.active_nodes)
