"""Differential battery for batched campaign execution (``--batch``).

Pins the tentpole guarantee — a batched campaign store is
``canonical_dump``-bit-identical to a serial one — across every execution
shape: the full 24-point bench grid, mixed grids where only some points
share a topology, eventful grids (never grouped), worker fleets, and
resume-after-kill mid-batch-group.  The planner itself
(:func:`~repro.experiments.runner.plan_point_batches` /
:func:`~repro.experiments.runner.batch_signature`) is unit-tested for its
grouping rules, and a two-subprocess test pins cross-interpreter dump
stability (the fixed-order summation fix).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.campaign.run as campaign_run
from repro.campaign import CampaignSpec, CampaignStore, run_campaign, run_campaign_workers
from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    batch_signature,
    main,
    plan_point_batches,
    point,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_campaign import campaign_spec as bench_campaign_spec  # noqa: E402


# --------------------------------------------------------------------- #
# Fixtures: cheap scenario stacks (mirrors tests/test_campaign_workers.py)
# --------------------------------------------------------------------- #
def base_scenario():
    return {
        "topology": "geant",
        "traffic": {
            "name": "uniform",
            "params": {"num_pairs": 6, "num_endpoints": 5, "flow_bps": 1e8, "seed": 0},
        },
        "power": "cisco",
        "schemes": [{"name": "response", "params": {"num_paths": 2, "k": 2}}, "ecmp"],
    }


def campaign_dict(name="grid", axes=None):
    return {
        "name": name,
        "base": base_scenario(),
        "axes": axes
        if axes is not None
        else {"seed": [0, 1], "set": {"traffic.flow_bps": [1e8, 1.5e8]}},
    }


def mixed_topology_campaign(name="mixed"):
    """Four points; only same-topology pairs may share a batch group."""
    return campaign_dict(name, axes={"topology": ["geant", "abovenet"], "seed": [0, 1]})


def eventful_campaign(name="eventful"):
    """Four points; half carry an event schedule and must never group."""
    failure = [
        {
            "name": "link-failure",
            "params": {"time_s": 900.0, "link": ["DE", "FR"], "repair_s": 1800.0},
        }
    ]
    return campaign_dict(name, axes={"events": [[], failure], "seed": [0, 1]})


def expanded_sweep_points(spec_dict):
    return [p.spec.sweep_point() for p in CampaignSpec.from_dict(spec_dict).expand()]


def canonical(store_path, campaign_id):
    with CampaignStore(store_path) as store:
        return store.canonical_dump(campaign_id)


def serial_and_batched_dumps(spec_dict, tmp_path):
    if isinstance(spec_dict, CampaignSpec):
        spec = spec_dict
    else:
        spec = CampaignSpec.from_dict(spec_dict)
    serial = run_campaign(spec, store_path=tmp_path / "serial.sqlite")
    batched = run_campaign(spec, store_path=tmp_path / "batched.sqlite", batch=True)
    assert serial.failed == 0 and batched.failed == 0
    assert batched.executed == serial.executed
    return (
        canonical(tmp_path / "serial.sqlite", serial.campaign_id),
        canonical(tmp_path / "batched.sqlite", batched.campaign_id),
    )


# --------------------------------------------------------------------- #
# Planner unit tests: grouping rules
# --------------------------------------------------------------------- #
def test_uniform_grid_shares_one_signature():
    points = expanded_sweep_points(campaign_dict())
    signatures = {batch_signature(p) for p in points}
    assert len(signatures) == 1 and None not in signatures
    assert plan_point_batches(points) == [[0, 1, 2, 3]]


def test_non_scenario_points_are_never_grouped():
    points = [point("json:dumps", obj=1), point("json:dumps", obj=1)]
    assert all(batch_signature(p) is None for p in points)
    assert plan_point_batches(points) == [[0], [1]]


def test_eventful_points_are_singletons():
    points = expanded_sweep_points(eventful_campaign())
    eventless = [
        i for i, p in enumerate(points) if not p.kwargs()["spec"].get("events")
    ]
    eventful = [i for i, p in enumerate(points) if p.kwargs()["spec"].get("events")]
    assert len(eventless) == 2 and len(eventful) == 2
    groups = plan_point_batches(points)
    assert sorted(i for group in groups for i in group) == [0, 1, 2, 3]
    assert eventless in groups  # the event-free pair batches together
    for index in eventful:
        assert [index] in groups  # eventful points never group


def test_mixed_topology_grid_groups_by_topology():
    points = expanded_sweep_points(mixed_topology_campaign())
    groups = plan_point_batches(points)
    assert len(groups) == 2 and all(len(group) == 2 for group in groups)
    # First-occurrence order with ascending indices inside each group.
    assert groups[0][0] == 0
    for group in groups:
        assert group == sorted(group)
        topologies = {
            json.dumps(points[i].kwargs()["spec"]["topology"], sort_keys=True)
            for i in group
        }
        assert len(topologies) == 1


def test_singleton_group_matches_serial(tmp_path):
    spec_dict = campaign_dict("single", axes={"seed": [7]})
    serial_dump, batched_dump = serial_and_batched_dumps(spec_dict, tmp_path)
    assert batched_dump == serial_dump


# --------------------------------------------------------------------- #
# Differential identity: batched == serial, bit for bit
# --------------------------------------------------------------------- #
def test_batched_dump_identical_to_serial(tmp_path):
    serial_dump, batched_dump = serial_and_batched_dumps(campaign_dict(), tmp_path)
    assert batched_dump == serial_dump


def test_batched_mixed_topology_dump_identical_to_serial(tmp_path):
    serial_dump, batched_dump = serial_and_batched_dumps(
        mixed_topology_campaign(), tmp_path
    )
    assert batched_dump == serial_dump


def test_batched_eventful_dump_identical_to_serial(tmp_path):
    serial_dump, batched_dump = serial_and_batched_dumps(
        eventful_campaign(), tmp_path
    )
    assert batched_dump == serial_dump


def test_batched_bench_grid_dump_identical_to_serial(tmp_path):
    """The full 24-point bench grid: the tentpole's headline identity."""
    serial_dump, batched_dump = serial_and_batched_dumps(
        bench_campaign_spec(), tmp_path
    )
    assert batched_dump == serial_dump


def test_batched_worker_fleet_dump_identical_to_serial(tmp_path):
    spec = CampaignSpec.from_dict(campaign_dict())
    serial = run_campaign(spec, store_path=tmp_path / "serial.sqlite")
    fleet = run_campaign_workers(
        spec, store_path=tmp_path / "fleet.sqlite", workers=2, batch=True
    )
    assert fleet.failed == 0 and fleet.remaining == 0
    assert canonical(tmp_path / "fleet.sqlite", fleet.campaign_id) == canonical(
        tmp_path / "serial.sqlite", serial.campaign_id
    )


# --------------------------------------------------------------------- #
# Fault injection: kill mid-batch-group, then resume
# --------------------------------------------------------------------- #
def test_kill_mid_batch_group_loses_only_that_group_then_resumes(tmp_path):
    """A kill between batch groups persists whole groups or nothing.

    The mixed grid forms two groups of two; the second group's evaluation
    is killed.  The first group must have committed atomically, the second
    must have left no rows, and a plain re-invocation completes exactly the
    missing points to a serial-identical store.
    """
    spec_dict = mixed_topology_campaign("killed")
    spec = CampaignSpec.from_dict(spec_dict)
    store_path = tmp_path / "killed.sqlite"
    points = spec.expand()
    with CampaignStore(store_path) as store:
        campaign_id = store.register_campaign(spec, points)

    real = campaign_run.execute_scenario_batch
    calls = []

    def kill_second_group(points, cache_dir=None):
        calls.append(len(points))
        if len(calls) == 2:
            raise KeyboardInterrupt("killed mid-batch-group")
        return real(points, cache_dir)

    campaign_run.execute_scenario_batch = kill_second_group
    try:
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, store_path=store_path, batch=True)
    finally:
        campaign_run.execute_scenario_batch = real

    with CampaignStore(store_path) as store:
        counts = store.status_counts(campaign_id)
    assert calls == [2, 2]
    assert counts == {"done": 2, "error": 0, "pending": 2, "total": 4}

    resumed = run_campaign(spec, store_path=store_path, batch=True)
    assert resumed.executed == 2 and resumed.remaining == 0
    serial = run_campaign(spec, store_path=tmp_path / "serial.sqlite")
    assert canonical(store_path, campaign_id) == canonical(
        tmp_path / "serial.sqlite", serial.campaign_id
    )


def test_killed_batch_worker_releases_its_leases(tmp_path):
    """A batch-mode worker killed mid-group hands its leases straight back."""
    spec_dict = campaign_dict("doomed-batch")
    spec = CampaignSpec.from_dict(spec_dict)
    store_path = tmp_path / "store.sqlite"
    points = spec.expand()
    with CampaignStore(store_path) as store:
        campaign_id = store.register_campaign(spec, points)

    def kill_execution(*_args, **_kwargs):
        raise KeyboardInterrupt("worker killed mid-group")

    real = campaign_run.execute_scenario_batch
    campaign_run.execute_scenario_batch = kill_execution
    try:
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                spec_dict,
                store_path=store_path,
                worker_id="doomed",
                chunk_size=2,
                batch=True,
            )
    finally:
        campaign_run.execute_scenario_batch = real
    with CampaignStore(store_path) as store:
        assert store.active_leases(campaign_id) == []
        counts = store.status_counts(campaign_id)
    assert counts["pending"] == 4 and counts["done"] == 0


# --------------------------------------------------------------------- #
# Mode exclusions: --batch and --parallel are mutually exclusive
# --------------------------------------------------------------------- #
def test_batch_rejects_parallel_at_the_api(tmp_path):
    with pytest.raises(ConfigurationError, match="batch"):
        run_campaign(
            campaign_dict(),
            store_path=tmp_path / "store.sqlite",
            batch=True,
            parallel=True,
        )


def test_batch_rejects_parallel_at_the_cli(tmp_path):
    spec_path = tmp_path / "campaign.json"
    spec_path.write_text(json.dumps(campaign_dict()))
    with pytest.raises(SystemExit) as excinfo:
        main(
            [
                "run-campaign",
                "--spec",
                str(spec_path),
                "--store",
                str(tmp_path / "store.sqlite"),
                "--batch",
                "--parallel",
            ]
        )
    assert excinfo.value.code == 2


# --------------------------------------------------------------------- #
# Cross-interpreter stability (fixed-order summation regression)
# --------------------------------------------------------------------- #
_SUBPROCESS_SCRIPT = """\
import json, sys
from repro.campaign import CampaignSpec, CampaignStore, run_campaign
spec = CampaignSpec.from_dict(json.loads(sys.argv[1]))
summary = run_campaign(
    spec, store_path=sys.argv[2], batch=(sys.argv[3] == "batch")
)
assert summary.failed == 0, "campaign point failed in subprocess"
with CampaignStore(sys.argv[2]) as store:
    dump = store.canonical_dump(summary.campaign_id)
sys.stdout.write(json.dumps(dump, sort_keys=True, separators=(",", ":")))
"""


def test_canonical_dump_identical_across_interpreters(tmp_path):
    """Two fresh interpreters — one serial, one batched — dump identically.

    Regression for alignment-dependent last-ULP wobble in reductions:
    before the fixed-order (pairwise) summation in the MCF objective and
    fairness kernels, the same campaign could dump differently from one
    interpreter process to the next.
    """
    spec_json = json.dumps(campaign_dict("xinterp"))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    dumps = []
    for mode in ("serial", "batch"):
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _SUBPROCESS_SCRIPT,
                spec_json,
                str(tmp_path / f"{mode}.sqlite"),
                mode,
            ],
            capture_output=True,
            text=True,
            env=env,
            check=False,
            cwd=str(REPO_ROOT),
        )
        assert proc.returncode == 0, proc.stderr
        dumps.append(proc.stdout)
    assert dumps[0] == dumps[1]
    assert dumps[0]  # non-empty: the dump really ran


# --------------------------------------------------------------------- #
# Concurrent read-only readers during an active batch write (service
# satellite): status/report polling must never error while --batch runs.
# --------------------------------------------------------------------- #
def test_read_only_readers_succeed_during_open_batch_write(tmp_path):
    """Readers see the last committed state while a batch chunk is writing.

    Deterministic variant: hold an open ``BEGIN IMMEDIATE`` transaction with
    uncommitted result rows — exactly the state the store is in while
    ``record_chunk`` persists a drained batch group — and drive every
    read-only query the service exposes against it.
    """
    spec = CampaignSpec.from_dict(campaign_dict())
    store_path = tmp_path / "store.sqlite"
    run_campaign(spec, store_path=store_path, max_points=2, batch=True)
    with CampaignStore(store_path) as writer:
        writer._connection.execute("BEGIN IMMEDIATE")
        writer._connection.execute(
            "INSERT OR REPLACE INTO results (config_hash, result_json, created_at) "
            "VALUES ('feed' || 'beef', '{}', '2026-01-01')"
        )
        try:
            with CampaignStore(store_path, read_only=True) as reader:
                campaign_id = reader.find_campaign()["campaign_id"]
                assert reader.status_counts(campaign_id)["done"] == 2
                # The service's paginated/filtered point reads.
                done = reader.points(campaign_id, status="done", limit=1, offset=1)
                assert len(done) == 1 and done[0]["status"] == "done"
                assert len(reader.points(campaign_id, status="pending")) == 2
                assert reader.active_leases(campaign_id) == []
                assert reader.metric_rows(campaign_id)
                # The uncommitted chunk stays invisible.
                assert "feedbeef" not in reader.canonical_dump(campaign_id)["results"]
        finally:
            writer._connection.execute("ROLLBACK")


def test_read_only_readers_poll_through_a_live_batch_drain(tmp_path):
    """Threaded variant: readers hammer a store a --batch drain is writing.

    Pins the service acceptance criterion end to end at the store layer:
    zero read errors (no ``database is locked``) while a batched worker
    drains the grid, and the final store is bit-identical to a serial run.
    """
    import threading

    spec = CampaignSpec.from_dict(
        campaign_dict(
            "drain24",
            axes={
                "seed": [0, 1, 2, 3, 4, 5],
                "set": {
                    "traffic.flow_bps": [1e8, 1.5e8],
                    "scenario.utilisation_threshold": [0.85, 0.9],
                },
            },
        )
    )
    store_path = tmp_path / "store.sqlite"
    points = spec.expand()
    with CampaignStore(store_path) as store:
        campaign_id = store.register_campaign(spec, points)

    errors = []
    done_draining = threading.Event()

    def read_loop():
        while not done_draining.is_set():
            try:
                with CampaignStore(store_path, read_only=True) as reader:
                    counts = reader.status_counts(campaign_id)
                    assert 0 <= counts["done"] <= len(points)
                    reader.points(campaign_id, status="done", limit=5)
                    reader.active_leases(campaign_id)
                    reader.metric_rows(campaign_id)
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(repr(error))
                return

    readers = [threading.Thread(target=read_loop, daemon=True) for _ in range(3)]
    for reader in readers:
        reader.start()
    try:
        summary = run_campaign(
            spec, store_path=store_path, worker_id="batch-writer", batch=True
        )
    finally:
        done_draining.set()
    for reader in readers:
        reader.join(timeout=30)

    assert errors == []
    assert summary.failed == 0 and summary.remaining == 0
    serial = run_campaign(spec, store_path=tmp_path / "serial.sqlite")
    assert canonical(store_path, campaign_id) == canonical(
        tmp_path / "serial.sqlite", serial.campaign_id
    )
