"""Shared fixtures for the test suite.

Fixtures deliberately use small topologies (the Figure 3 example, a k=4
fat-tree, a diamond) so that even the MILP-backed tests run in milliseconds.
"""

from __future__ import annotations

import pytest

from repro.power import CiscoRouterPowerModel, CommoditySwitchPowerModel
from repro.topology import Topology, build_example, build_fattree, build_geant
from repro.traffic import TrafficMatrix
from repro.units import mbps


@pytest.fixture
def diamond() -> Topology:
    """A 4-node diamond: two disjoint 2-hop paths between ``a`` and ``d``."""
    topo = Topology("diamond")
    for name in "abcd":
        topo.add_node(name)
    topo.add_link("a", "b", capacity_bps=mbps(100), latency_s=0.001)
    topo.add_link("b", "d", capacity_bps=mbps(100), latency_s=0.001)
    topo.add_link("a", "c", capacity_bps=mbps(100), latency_s=0.002)
    topo.add_link("c", "d", capacity_bps=mbps(100), latency_s=0.002)
    return topo


@pytest.fixture
def line() -> Topology:
    """A 3-node line ``a - b - c``."""
    topo = Topology("line")
    for name in "abc":
        topo.add_node(name)
    topo.add_link("a", "b", capacity_bps=mbps(10))
    topo.add_link("b", "c", capacity_bps=mbps(10))
    return topo


@pytest.fixture
def example_topology() -> Topology:
    """The Figure 3 example topology (including router B)."""
    return build_example(include_b=True)


@pytest.fixture
def click_topology() -> Topology:
    """The Click testbed topology (Figure 3 without router B)."""
    return build_example(include_b=False)


@pytest.fixture
def fattree4() -> Topology:
    """A k=4 fat-tree with hosts."""
    return build_fattree(4)


@pytest.fixture(scope="session")
def geant() -> Topology:
    """The GÉANT-like topology (session-scoped: it is immutable in tests)."""
    return build_geant()


@pytest.fixture
def cisco_model() -> CiscoRouterPowerModel:
    """The representative ISP power model."""
    return CiscoRouterPowerModel()


@pytest.fixture
def commodity_model() -> CommoditySwitchPowerModel:
    """The datacenter commodity-switch power model."""
    return CommoditySwitchPowerModel(ports_at_peak=4)


@pytest.fixture
def diamond_demands() -> TrafficMatrix:
    """A small demand set on the diamond topology."""
    return TrafficMatrix({("a", "d"): mbps(40), ("d", "a"): mbps(10)})
