"""Tests for the declarative Scenario API (registry, specs, engine, CLI)."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.runner import Sweep, main
from repro.scenario import (
    PowerSpec,
    RoutingSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
    component_names,
    register,
    registered_components,
    resolve,
    run_scenario,
    run_scenario_dict,
)
from repro.scenario.schemes import CachedCandidatePaths


def tiny_fattree_spec(**overrides):
    """A fast fat-tree scenario used across the engine tests."""
    settings = dict(
        name="tiny-fattree",
        topology=TopologySpec("fattree", k=4),
        traffic=TrafficSpec("sinewave", mode="near", num_intervals=2, seed=4),
        power=PowerSpec("commodity", ports_at_peak=4),
        schemes=(SchemeSpec("response", num_paths=3, k=4), SchemeSpec("ecmp")),
    )
    settings.update(overrides)
    return ScenarioSpec(**settings)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #


def test_registry_contains_the_paper_cross_product():
    components = registered_components()
    assert {"fattree", "geant", "genuity", "abovenet", "pop-access"} <= set(
        components["topology"]
    )
    assert {"sinewave", "gravity", "geant-trace", "google-trace"} <= set(
        components["traffic"]
    )
    assert {"cisco", "commodity", "alternative"} <= set(components["power"])
    assert {
        "ecmp",
        "greente",
        "elastictree",
        "lp-relax",
        "pathmilp",
        "response",
        "response-lat",
        "response-ospf",
        "response-heuristic",
    } <= set(components["scheme"])


def test_unknown_component_error_lists_registered_names():
    with pytest.raises(ConfigurationError) as excinfo:
        resolve("topology", "nope")
    message = str(excinfo.value)
    assert "nope" in message
    assert "fattree" in message and "geant" in message  # the fix is in the message


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError, match="unknown component kind"):
        resolve("solver", "greente")
    with pytest.raises(ConfigurationError, match="unknown component kind"):
        register("solver", "x")


def test_register_decorator_and_duplicate_rejection():
    @register("scheme", "_test-flat")
    def _flat(scenario):  # pragma: no cover - never executed
        raise AssertionError

    assert resolve("scheme", "_test-flat") is _flat
    assert "_test-flat" in component_names("scheme")
    with pytest.raises(ConfigurationError, match="already registered"):
        register("scheme", "_test-flat")(lambda scenario: None)


# --------------------------------------------------------------------- #
# Specs: round-trip, hashing, validation
# --------------------------------------------------------------------- #


def test_spec_round_trip_preserves_equality_and_hash():
    spec = tiny_fattree_spec()
    rebuilt = ScenarioSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.config_hash() == spec.config_hash()
    via_json = ScenarioSpec.from_json(spec.to_json())
    assert via_json == spec
    assert via_json.config_hash() == spec.config_hash()


def test_spec_hash_changes_with_parameters():
    spec = tiny_fattree_spec()
    other = tiny_fattree_spec(
        traffic=TrafficSpec("sinewave", mode="far", num_intervals=2, seed=4)
    )
    assert spec.config_hash() != other.config_hash()


def test_spec_tuples_normalise_to_lists():
    spec = TrafficSpec("gravity", levels=(0.1, 0.5), pairs=(("FR", "DE"),))
    assert spec.params["levels"] == [0.1, 0.5]
    assert spec.params["pairs"] == [["FR", "DE"]]
    rebuilt = TrafficSpec.from_dict(spec.to_dict())
    assert rebuilt == spec


def test_spec_rejects_non_json_params():
    with pytest.raises(ConfigurationError, match="JSON-serialisable"):
        TopologySpec("fattree", k=object())


def test_spec_from_dict_accepts_bare_names_and_rejects_unknown_keys():
    spec = ScenarioSpec.from_dict(
        {
            "topology": "geant",
            "traffic": {"name": "gravity", "params": {"num_pairs": 4, "num_endpoints": 3}},
            "power": "cisco",
            "schemes": ["ospf"],
        }
    )
    assert spec.topology.name == "geant"
    assert spec.schemes[0].label == "ospf"
    with pytest.raises(ConfigurationError, match="missing sections"):
        ScenarioSpec.from_dict({"topology": "geant"})
    with pytest.raises(ConfigurationError, match="unknown scenario spec keys"):
        ScenarioSpec.from_dict(
            {"topology": "geant", "traffic": "gravity", "power": "cisco", "oops": 1}
        )


def test_duplicate_scheme_labels_rejected():
    with pytest.raises(ConfigurationError, match="labels are not unique"):
        tiny_fattree_spec(schemes=(SchemeSpec("ospf"), SchemeSpec("ospf")))
    # Distinct labels make the same scheme usable twice.
    spec = tiny_fattree_spec(
        schemes=(
            SchemeSpec("response", label="resp-k3", k=3),
            SchemeSpec("response", label="resp-k4", k=4),
        )
    )
    assert spec.scheme_labels() == ["resp-k3", "resp-k4"]
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_validate_names_the_unknown_component():
    spec = tiny_fattree_spec(power=PowerSpec("fusion"))
    with pytest.raises(ConfigurationError, match="unknown power component 'fusion'"):
        spec.validate()


# --------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------- #


def test_build_scenario_constructs_the_stack():
    built = build_scenario(tiny_fattree_spec())
    assert built.topology.name == "fattree-k4"
    assert len(built.trace) == 2
    assert built.pairs and all(len(pair) == 2 for pair in built.pairs)
    assert built.baseline_power_w > 0


def test_run_scenario_returns_uniform_result():
    spec = tiny_fattree_spec()
    result = run_scenario(spec)
    assert result.name == "tiny-fattree"
    assert result.config_hash == spec.config_hash()
    assert set(result.power_percent) == {"response", "ecmp"}
    assert len(result.power_percent["response"]) == len(result.times_s) == 2
    assert result.recomputations["response"] == 0
    assert 0 < result.mean_power_percent("response") < 100
    assert result.mean_savings_percent("response") > result.mean_savings_percent("ecmp")
    # to_dict round-trips through JSON (the CLI --json output).
    assert json.loads(json.dumps(result.to_dict()))["name"] == "tiny-fattree"


def test_run_scenario_requires_schemes():
    with pytest.raises(ConfigurationError, match="names no schemes"):
        run_scenario(tiny_fattree_spec(schemes=()))


def test_run_scenario_dict_equals_run_scenario():
    spec = tiny_fattree_spec()
    assert (
        run_scenario_dict(spec.to_dict()).power_percent
        == run_scenario(spec).power_percent
    )


def test_never_expressed_cross_product_geant_gravity_response_vs_elastictree(tmp_path):
    """The acceptance scenario: GEANT x gravity x cisco, REsPoNse vs ElasticTree.

    Runs end-to-end from a single JSON spec and hits the sweep cache on the
    second run (same config hash).
    """
    spec = ScenarioSpec(
        name="geant-gravity",
        topology=TopologySpec("geant"),
        traffic=TrafficSpec(
            "gravity", num_pairs=12, num_endpoints=6, seed=1, calibrate=True,
            levels=[0.25, 1.0],
        ),
        power=PowerSpec("cisco"),
        schemes=(SchemeSpec("response", num_paths=3, k=3), SchemeSpec("elastictree")),
    )
    spec_from_json = ScenarioSpec.from_json(spec.to_json())
    point = spec_from_json.sweep_point()
    cache_dir = tmp_path / "cache"
    sweep = Sweep([point], cache_dir=cache_dir)
    assert sweep.cached_points() == []
    first = sweep.run()[0]
    assert set(first.power_percent) == {"response", "elastictree"}
    assert all(0 < value <= 100 for value in first.power_percent["response"])
    # Second run: the spec's config hash hits the cache.
    assert sweep.cached_points() == [point]
    second = Sweep([spec.sweep_point()], cache_dir=cache_dir).run()[0]
    assert second.power_percent == first.power_percent


def test_matrix_traffic_and_routing_sections():
    spec = ScenarioSpec(
        name="explicit",
        topology=TopologySpec("example"),
        traffic=TrafficSpec(
            "matrix", demands=[["A", "K", 2e6], ["C", "K", 1e6]], interval_s=60.0
        ),
        power=PowerSpec("cisco"),
        routing=RoutingSpec("ospf-invcap"),
        schemes=(SchemeSpec("ospf"),),
    )
    built = build_scenario(spec)
    assert built.pairs == [("A", "K"), ("C", "K")]
    assert built.trace[0].demand("A", "K") == 2e6
    assert built.routing is not None
    assert built.routing.get("A", "K") is not None
    result = run_scenario(spec)
    assert result.power_percent["ospf"] == [100.0]


def test_programmatic_overrides_take_precedence():
    from repro.power.commodity import CommoditySwitchPowerModel

    model = CommoditySwitchPowerModel(ports_at_peak=4)
    built = build_scenario(tiny_fattree_spec(), power_model=model)
    assert built.power_model is model


# --------------------------------------------------------------------- #
# GreenTE candidate caching (one code path)
# --------------------------------------------------------------------- #


def test_greente_interval_solver_caches_candidates(monkeypatch):
    import repro.scenario.schemes as schemes_module
    from repro.experiments.common import greente_interval_solver
    from repro.power.commodity import CommoditySwitchPowerModel
    from repro.topology.fattree import build_fattree, hosts
    from repro.traffic.matrix import TrafficMatrix

    calls = []
    original = schemes_module.k_shortest_paths_all_pairs

    def counting(topology, k, pairs=None):
        calls.append(tuple(sorted(pairs)))
        return original(topology, k, pairs=pairs)

    monkeypatch.setattr(schemes_module, "k_shortest_paths_all_pairs", counting)

    topology = build_fattree(4)
    model = CommoditySwitchPowerModel(ports_at_peak=4)
    host_names = hosts(topology)
    pairs = [(host_names[0], host_names[4]), (host_names[1], host_names[5])]
    solver = greente_interval_solver(k=3)
    first = solver(topology, model, TrafficMatrix.uniform(pairs, 1e8))
    second = solver(topology, model, TrafficMatrix.uniform(pairs, 2e8))
    assert len(calls) == 1  # candidates computed once, reused across intervals
    assert first.active_nodes and second.active_nodes


def test_cached_candidates_reset_on_new_topology():
    from repro.topology.fattree import build_fattree, hosts

    cache = CachedCandidatePaths(k=2)
    first_topology = build_fattree(4)
    host_names = hosts(first_topology)
    pairs = [(host_names[0], host_names[4])]
    first = cache.for_pairs(first_topology, pairs)
    assert cache.for_pairs(first_topology, pairs) is first
    second_topology = build_fattree(4)
    assert cache.for_pairs(second_topology, pairs) is not first


# --------------------------------------------------------------------- #
# CLI subcommands
# --------------------------------------------------------------------- #


def test_cli_list_components(capsys):
    assert main(["list-components"]) == 0
    output = capsys.readouterr().out
    for kind in ("topology:", "traffic:", "power:", "routing:", "scheme:", "event:"):
        assert kind in output
    assert "fattree" in output and "response" in output
    # Event kinds are enumerated so campaign event-schedule axes are
    # discoverable alongside the other component kinds.
    assert "link-failure" in output and "traffic-surge" in output


def test_cli_list_components_json(capsys):
    import json as json_module

    assert main(["list-components", "--json"]) == 0
    listing = json_module.loads(capsys.readouterr().out)
    assert set(listing) == {"topology", "traffic", "power", "routing", "scheme", "event"}
    assert "link-failure" in listing["event"]
    assert "response" in listing["scheme"]
    assert main(["list-components", "--json", "--kind", "event"]) == 0
    only_events = json_module.loads(capsys.readouterr().out)
    assert set(only_events) == {"event"}


def test_scenario_result_from_dict_tolerates_pre_events_rows():
    """Rows stored before the events axis existed must still load."""
    from repro.scenario import ScenarioResult

    legacy = {
        "name": "legacy",
        "config_hash": "f00d" * 16,
        "times_s": [0.0, 900.0],
        "power_percent": {"response": [40.0, 50.0]},
        "recomputations": {"response": 1},
        "max_utilisation": {"response": [0.4, 0.5]},
        # No spec/events/compute_seconds/violations/reaction fields.
    }
    result = ScenarioResult.from_dict(legacy)
    assert result.mean_power_percent("response") == 45.0
    assert result.events == []
    assert result.compute_seconds == {}
    assert result.violations == {}
    assert result.reaction == {}
    assert result.spec == {}
    # headline_metrics still works without the newer series.
    metrics = result.headline_metrics()["response"]
    assert metrics["recomputations"] == 1.0
    assert metrics["peak_utilisation"] == 0.5
    assert "mean_compute_s" not in metrics


def test_cli_run_scenario_from_json_spec_hits_cache(tmp_path, capsys):
    spec = tiny_fattree_spec(schemes=(SchemeSpec("ospf"),))
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json())
    cache_dir = tmp_path / "cache"

    assert main(["run-scenario", "--spec", str(spec_path), "--cache-dir", str(cache_dir)]) == 0
    first = capsys.readouterr().out
    assert "cache miss" in first
    assert spec.config_hash() in first
    assert main(["run-scenario", "--spec", str(spec_path), "--cache-dir", str(cache_dir)]) == 0
    second = capsys.readouterr().out
    assert "cache hit" in second
    assert "ospf: mean power 100.0%" in second


def test_cli_run_scenario_from_flags_and_set_overrides(capsys):
    assert (
        main(
            [
                "run-scenario",
                "--topology",
                "fattree",
                "--traffic",
                "sinewave",
                "--power",
                "commodity",
                "--scheme",
                "ecmp",
                "--set",
                "topology.k=4",
                "--set",
                "traffic.num_intervals=2",
                "--set",
                "traffic.mode=near",
                "--set",
                "scenario.name=from-flags",
                "--json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["name"] == "from-flags"
    assert payload["spec"]["topology"]["params"]["k"] == 4
    assert len(payload["power_percent"]["ecmp"]) == 2


def test_cli_run_scenario_rejects_unknown_component(capsys):
    with pytest.raises(SystemExit):
        main(
            [
                "run-scenario",
                "--topology",
                "moebius",
                "--traffic",
                "sinewave",
                "--power",
                "commodity",
                "--scheme",
                "ecmp",
            ]
        )
    assert "registered topology components" in capsys.readouterr().err


def test_cli_run_scenario_requires_sections(capsys):
    with pytest.raises(SystemExit):
        main(["run-scenario", "--topology", "geant"])
    assert "missing" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Ported drivers: bit-identical to the pre-redesign construction
# --------------------------------------------------------------------- #


def test_fig4_is_bit_identical_to_pre_redesign_pipeline():
    """The ported Figure 4 driver reproduces the hand-wired stack exactly.

    This replays the pre-redesign fig4 computation — direct constructor
    calls, no Scenario API — and requires float-for-float equality with
    ``run_fig4``, which now builds everything through ``run_scenario``.
    """
    from repro.core.planner import activate_paths
    from repro.core.response import ResponseConfig, build_response_plan
    from repro.experiments.fig4 import run_fig4
    from repro.optim.elastictree import elastictree_subset
    from repro.power.accounting import full_power, network_power
    from repro.power.commodity import CommoditySwitchPowerModel
    from repro.routing.ecmp import ecmp_active_elements
    from repro.topology.fattree import build_fattree
    from repro.traffic.sinewave import fattree_sine_pairs, sine_wave_trace

    k, num_intervals, threshold, seed = 4, 4, 0.9, 4
    expected = {}

    topology = build_fattree(k)
    power_model = CommoditySwitchPowerModel(ports_at_peak=k)
    baseline = full_power(topology, power_model).total_w
    for mode in ("near", "far"):
        trace = sine_wave_trace(
            topology, mode=mode, num_intervals=num_intervals, seed=seed
        )
        pairs = fattree_sine_pairs(topology, mode, seed=seed)
        plan = build_response_plan(
            topology,
            power_model,
            pairs=pairs,
            config=ResponseConfig(num_paths=3, k=4, include_failover=True),
        )
        response, elastictree = [], []
        for matrix in trace.matrices():
            activation = activate_paths(
                topology, power_model, plan, matrix, utilisation_threshold=threshold
            )
            response.append(activation.power_percent)
            subset = elastictree_subset(topology, power_model, matrix)
            elastictree.append(100.0 * subset.power_w / baseline)
        expected[f"response_{mode}"] = response
        expected[f"elastictree_{mode}"] = elastictree
    far_trace = sine_wave_trace(
        topology, mode="far", num_intervals=num_intervals, seed=seed
    )
    ecmp = []
    for matrix in far_trace.matrices():
        nodes, links = ecmp_active_elements(topology, matrix)
        ecmp_power = network_power(topology, power_model, nodes, links).total_w
        ecmp.append(100.0 * ecmp_power / baseline)
    expected["ecmp"] = ecmp

    result = run_fig4(
        k=k,
        num_intervals=num_intervals,
        utilisation_threshold=threshold,
        include_elastictree=True,
        seed=seed,
    )
    assert set(result.power_percent) == set(expected)
    for key, series in expected.items():
        assert result.power_percent[key] == series  # exact, not approx
