"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import CiscoRouterPowerModel, full_power, network_power
from repro.routing import Path, link_loads, solve_mcf
from repro.routing.ospf import ospf_invcap_routing
from repro.simulator import Flow, SimulatedNetwork, constant_demand
from repro.simulator.fairness import (
    SparseIncidence,
    batch_max_min_fair_rates,
    batch_max_min_fair_rates_sparse,
    grouped_max_min_fair_rates,
    max_min_fair_rates,
    max_min_fair_rates_sparse,
    pairwise_sum,
)
from repro.simulator.reference import reference_max_min_rates
from repro.topology import random_connected_topology
from repro.traffic import TrafficMatrix, all_pairs, gravity_matrix
from repro.traffic.google_trace import google_volume_series, relative_changes
from repro.traffic.sinewave import sine_fraction
from repro.units import mbps

MODEL = CiscoRouterPowerModel()


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
@st.composite
def small_topologies(draw):
    """Random connected topologies with 4-10 nodes."""
    num_nodes = draw(st.integers(min_value=4, max_value=10))
    max_links = num_nodes * (num_nodes - 1) // 2
    num_links = draw(st.integers(min_value=num_nodes - 1, max_value=min(max_links, 2 * num_nodes)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_connected_topology(num_nodes, num_links, seed=seed)


@st.composite
def demand_matrices(draw):
    """Random demand matrices over small node-name sets."""
    names = [f"n{i}" for i in range(draw(st.integers(min_value=2, max_value=6)))]
    pairs = all_pairs(names)
    demands = {}
    for pair in pairs:
        if draw(st.booleans()):
            demands[pair] = draw(
                st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False)
            )
    return TrafficMatrix(demands)


# --------------------------------------------------------------------- #
# Traffic-matrix invariants
# --------------------------------------------------------------------- #
@given(demand_matrices(), st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
def test_scaling_scales_total_linearly(matrix, factor):
    scaled = matrix.scaled(factor)
    assert abs(scaled.total_bps - matrix.total_bps * factor) <= 1e-6 * max(
        1.0, matrix.total_bps * factor
    )
    assert len(scaled) == len(matrix)


@given(demand_matrices(), demand_matrices())
def test_merge_total_is_sum_of_totals(first, second):
    merged = first.merged_with(second)
    assert abs(merged.total_bps - (first.total_bps + second.total_bps)) <= 1e-6 * max(
        1.0, first.total_bps + second.total_bps
    )


# --------------------------------------------------------------------- #
# Topology and routing invariants
# --------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(small_topologies())
def test_random_topologies_are_connected_and_consistent(topology):
    assert topology.is_connected()
    assert topology.num_arcs == 2 * topology.num_links
    degrees = sum(topology.degree(node) for node in topology.nodes())
    assert degrees == 2 * topology.num_links


@settings(max_examples=20, deadline=None)
@given(small_topologies())
def test_ospf_paths_are_valid_and_loop_free(topology):
    routing = ospf_invcap_routing(topology)
    for _pair, path in routing.items():
        assert path.is_valid(topology)
        assert len(set(path.nodes)) == len(path.nodes)


@settings(max_examples=20, deadline=None)
@given(small_topologies(), st.floats(min_value=1e3, max_value=5e7, allow_nan=False))
def test_link_loads_conserve_total_volume(topology, per_pair_demand):
    routing = ospf_invcap_routing(topology)
    nodes = topology.nodes()
    demands = TrafficMatrix.uniform([(nodes[0], nodes[-1]), (nodes[-1], nodes[0])], per_pair_demand)
    loads = link_loads(topology, routing, demands)
    # Total volume leaving each origin equals its demand.
    for origin, destination in demands.pairs():
        outgoing = sum(
            load for (src, _dst), load in loads.items() if src == origin
        )
        incoming = sum(
            load for (_src, dst), load in loads.items() if dst == origin
        )
        assert outgoing - incoming >= -1e-6


@settings(max_examples=15, deadline=None)
@given(small_topologies())
def test_gravity_matrix_total_matches_request(topology):
    matrix = gravity_matrix(topology, total_traffic_bps=1e8)
    assert abs(matrix.total_bps - 1e8) <= 1.0
    assert all(demand >= 0 for _pair, demand in matrix.items())


@settings(max_examples=15, deadline=None)
@given(small_topologies())
def test_mcf_reports_utilisation_within_limit_when_feasible(topology):
    nodes = topology.nodes()
    demands = TrafficMatrix({(nodes[0], nodes[-1]): mbps(30)})
    result = solve_mcf(topology, demands)
    if result.feasible:
        assert result.max_utilisation <= 1.0 + 1e-6
        total_out = sum(
            load for (src, _), load in result.arc_loads.items() if src == nodes[0]
        )
        assert total_out >= mbps(30) - 1e-3


# --------------------------------------------------------------------- #
# Power-accounting invariants
# --------------------------------------------------------------------- #
@settings(max_examples=20, deadline=None)
@given(small_topologies(), st.integers(min_value=0, max_value=10_000))
def test_subset_power_never_exceeds_full_power(topology, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    nodes = topology.nodes()
    keep = [name for name in nodes if rng.random() < 0.7]
    subset = network_power(topology, MODEL, active_nodes=keep)
    total = full_power(topology, MODEL)
    assert subset.total_w <= total.total_w + 1e-9
    assert subset.chassis_w >= 0 and subset.ports_w >= 0


@settings(max_examples=20, deadline=None)
@given(small_topologies())
def test_power_is_monotone_in_active_links(topology):
    links = topology.link_keys()
    half = links[: len(links) // 2]
    partial = network_power(topology, MODEL, active_links=half)
    complete = network_power(topology, MODEL, active_links=links)
    assert partial.total_w <= complete.total_w + 1e-9


# --------------------------------------------------------------------- #
# Simulator rate-allocation invariants
# --------------------------------------------------------------------- #
@settings(max_examples=20, deadline=None)
@given(
    small_topologies(),
    st.lists(st.floats(min_value=1e3, max_value=2e8, allow_nan=False), min_size=1, max_size=5),
)
def test_max_min_allocation_respects_capacity_and_demand(topology, demands):
    network = SimulatedNetwork(topology, MODEL)
    nodes = topology.nodes()
    path_nodes = topology.shortest_path(nodes[0], nodes[-1])
    flows = [
        Flow(f"f{i}", nodes[0], nodes[-1], constant_demand(demand), path=Path.of(path_nodes))
        for i, demand in enumerate(demands)
    ]
    network.allocate_rates(flows, now_s=0.0)
    for flow in flows:
        assert flow.rate_bps <= flow.offered_load(0.0) + 1e-6
        assert flow.rate_bps >= 0.0
    for src, dst in zip(path_nodes, path_nodes[1:], strict=False):
        assert network.arc_load(src, dst) <= topology.arc(src, dst).capacity_bps + 1e-3


# --------------------------------------------------------------------- #
# Batched max-min fairness: batch == serial == dict oracle
# --------------------------------------------------------------------- #
@st.composite
def fairness_problems(draw):
    """Random stacked fairness problems over a shared flows×arcs incidence.

    Degenerate shapes appear on purpose: zero-demand flows, zero-capacity
    arcs, flows crossing no arc at all, single-flow problems.
    """
    num_flows = draw(st.integers(min_value=1, max_value=6))
    num_arcs = draw(st.integers(min_value=0, max_value=6))
    arcs_per_flow = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_arcs - 1),
                min_size=0,
                max_size=4,
                unique=True,
            )
        )
        if num_arcs
        else []
        for _ in range(num_flows)
    ]
    flat_flow = np.array(
        [flow for flow, arcs in enumerate(arcs_per_flow) for _ in arcs],
        dtype=np.int64,
    )
    flat_arc = np.array(
        [arc for arcs in arcs_per_flow for arc in arcs], dtype=np.int64
    )
    value = st.one_of(
        st.just(0.0),
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    )
    batch = draw(st.integers(min_value=1, max_value=5))
    demands = np.array(
        [[draw(value) for _ in range(num_flows)] for _ in range(batch)]
    )
    capacity = np.array([draw(value) for _ in range(num_arcs)])
    return demands, flat_flow, flat_arc, capacity


@settings(max_examples=120, deadline=None)
@given(problem=fairness_problems())
def test_batch_fairness_is_bit_identical_to_serial(problem):
    demands, flat_flow, flat_arc, capacity = problem
    batched = batch_max_min_fair_rates(demands, flat_flow, flat_arc, capacity)
    assert batched.shape == demands.shape
    for row in range(demands.shape[0]):
        serial = max_min_fair_rates(demands[row], flat_flow, flat_arc, capacity)
        # Bit-for-bit, not approximately: the batched kernel replicates the
        # serial arithmetic element by element.
        assert np.array_equal(batched[row], serial)


@settings(max_examples=60, deadline=None)
@given(problem=fairness_problems())
def test_batch_fairness_accepts_per_element_capacities(problem):
    demands, flat_flow, flat_arc, capacity = problem
    batch = demands.shape[0]
    # Stack distinct capacity vectors: row i gets capacity scaled by i+1.
    capacities = np.stack([capacity * (row + 1) for row in range(batch)])
    batched = batch_max_min_fair_rates(demands, flat_flow, flat_arc, capacities)
    for row in range(batch):
        serial = max_min_fair_rates(
            demands[row], flat_flow, flat_arc, capacities[row]
        )
        assert np.array_equal(batched[row], serial)


@settings(max_examples=60, deadline=None)
@given(problem=fairness_problems())
def test_batch_of_one_equals_unbatched(problem):
    demands, flat_flow, flat_arc, capacity = problem
    single = demands[:1]
    batched = batch_max_min_fair_rates(single, flat_flow, flat_arc, capacity)
    serial = max_min_fair_rates(single[0], flat_flow, flat_arc, capacity)
    assert np.array_equal(batched[0], serial)


def test_batch_fairness_degenerate_shapes():
    empty = np.array([], dtype=np.int64)
    # Empty batch and flowless batch come back as all-zero allocations.
    assert batch_max_min_fair_rates(
        np.zeros((0, 3)), empty, empty, np.array([1.0])
    ).shape == (0, 3)
    assert batch_max_min_fair_rates(
        np.zeros((2, 0)), empty, empty, np.array([1.0])
    ).shape == (2, 0)
    # A single flow crossing a zero-capacity arc is frozen at rate zero.
    rates = batch_max_min_fair_rates(
        np.array([[mbps(10)]]),
        np.array([0], dtype=np.int64),
        np.array([0], dtype=np.int64),
        np.array([0.0]),
    )
    assert rates[0, 0] == 0.0
    with pytest.raises(ValueError):
        batch_max_min_fair_rates(np.zeros(3), empty, empty, np.array([1.0]))
    with pytest.raises(ValueError):
        batch_max_min_fair_rates(
            np.zeros((2, 3)), empty, empty, np.zeros((3, 1))
        )


@settings(max_examples=25, deadline=None)
@given(
    small_topologies(),
    st.lists(
        st.floats(min_value=0.0, max_value=2e8, allow_nan=False),
        min_size=1,
        max_size=5,
    ),
)
def test_batched_network_allocation_matches_serial_and_oracle(topology, demands):
    """Three-way differential: batched == serial engine == dict oracle."""
    network = SimulatedNetwork(topology, MODEL)
    nodes = topology.nodes()
    path_nodes = topology.shortest_path(nodes[0], nodes[-1])
    flows = [
        Flow(
            f"f{index}",
            nodes[0],
            nodes[-1],
            constant_demand(demand),
            path=Path.of(path_nodes),
        )
        for index, demand in enumerate(demands)
    ]
    times = [0.0, 900.0, 1800.0]
    batched = network.allocate_rates_batch(flows, times)
    assert batched.shape == (len(times), len(flows))
    for row, time in enumerate(times):
        expected_rates, _ = reference_max_min_rates(network, flows, now_s=time)
        network.allocate_rates(flows, now_s=time)
        for column, flow in enumerate(flows):
            # Batched vs serial engine: exact, bit for bit.
            assert batched[row, column] == flow.rate_bps
            # Vectorized vs dict oracle: numerically equivalent.
            assert flow.rate_bps == pytest.approx(
                expected_rates[flow.flow_id], rel=1e-9, abs=1e-6
            )


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False),
        min_size=0,
        max_size=40,
    )
)
def test_pairwise_sum_is_order_fixed_and_accurate(values):
    array = np.array(values, dtype=float)
    total = pairwise_sum(array)
    assert total == pairwise_sum(np.array(values, dtype=float))
    assert total == pytest.approx(float(sum(values)), rel=1e-12, abs=1e-6)
    stacked = np.stack([array, array * 2.0]) if array.size else np.zeros((2, 0))
    batched = pairwise_sum(stacked, axis=-1)
    assert batched.shape == (2,)
    assert batched[0] == total


# --------------------------------------------------------------------- #
# Sparse fairness kernels: CSR twins == dense, bit for bit
# --------------------------------------------------------------------- #
@settings(max_examples=120, deadline=None)
@given(problem=fairness_problems())
def test_sparse_serial_fairness_is_bit_identical_to_dense(problem):
    demands, flat_flow, flat_arc, capacity = problem
    for row in range(demands.shape[0]):
        dense = max_min_fair_rates(demands[row], flat_flow, flat_arc, capacity)
        sparse = max_min_fair_rates_sparse(
            demands[row], flat_flow, flat_arc, capacity
        )
        assert np.array_equal(dense, sparse)


@settings(max_examples=80, deadline=None)
@given(problem=fairness_problems())
def test_sparse_batch_fairness_is_bit_identical_to_dense(problem):
    demands, flat_flow, flat_arc, capacity = problem
    dense = batch_max_min_fair_rates(demands, flat_flow, flat_arc, capacity)
    sparse = batch_max_min_fair_rates_sparse(demands, flat_flow, flat_arc, capacity)
    assert np.array_equal(dense, sparse)
    # Per-element capacities: row i gets a distinct capacity vector.
    capacities = np.stack(
        [capacity * (row + 1) for row in range(demands.shape[0])]
    )
    dense_stacked = batch_max_min_fair_rates(demands, flat_flow, flat_arc, capacities)
    sparse_stacked = batch_max_min_fair_rates_sparse(
        demands, flat_flow, flat_arc, capacities
    )
    assert np.array_equal(dense_stacked, sparse_stacked)


@settings(max_examples=60, deadline=None)
@given(problem=fairness_problems())
def test_sparse_incidence_reuse_matches_fresh_build(problem):
    demands, flat_flow, flat_arc, capacity = problem
    incidence = SparseIncidence(
        flat_flow, flat_arc, demands.shape[1], capacity.shape[0]
    )
    fresh = batch_max_min_fair_rates_sparse(demands, flat_flow, flat_arc, capacity)
    reused = batch_max_min_fair_rates_sparse(
        demands, flat_flow, flat_arc, capacity, incidence=incidence
    )
    assert np.array_equal(fresh, reused)


def test_sparse_fairness_edge_cases():
    empty = np.array([], dtype=np.int64)
    # All-zero demands freeze immediately at rate zero.
    zeros = max_min_fair_rates_sparse(
        np.zeros(3),
        np.array([0, 1, 2], dtype=np.int64),
        np.array([0, 0, 0], dtype=np.int64),
        np.array([mbps(10)]),
    )
    assert np.array_equal(zeros, np.zeros(3))
    # A flow crossing an exhausted (zero-capacity) arc is killed at zero
    # while the unconstrained flow still gets its full demand.
    rates = max_min_fair_rates_sparse(
        np.array([mbps(10), mbps(20)]),
        np.array([0], dtype=np.int64),
        np.array([0], dtype=np.int64),
        np.array([0.0]),
    )
    assert rates[0] == 0.0 and rates[1] == mbps(20)
    # Arcless problems are purely demand-limited.
    free = max_min_fair_rates_sparse(
        np.array([mbps(5)]), empty, empty, np.array([], dtype=float)
    )
    assert free[0] == mbps(5)
    # The batch twin validates shapes exactly like the dense kernel.
    with pytest.raises(ValueError):
        batch_max_min_fair_rates_sparse(np.zeros(3), empty, empty, np.array([1.0]))


# --------------------------------------------------------------------- #
# Grouped kernel: aggregate-then-allocate == allocate-then-sum
# --------------------------------------------------------------------- #
@st.composite
def grouped_problems(draw):
    """A group-level incidence plus a member population per group.

    Groups with zero members appear on purpose: they contribute no dense
    entries, so the grouped kernel must ignore their arcs entirely.
    """
    demands, flat_flow, flat_arc, capacity = draw(fairness_problems())
    num_groups = demands.shape[1]
    members = [draw(st.integers(min_value=0, max_value=3)) for _ in range(num_groups)]
    value = st.floats(
        min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
    )
    flow_group = np.array(
        [group for group, count in enumerate(members) for _ in range(count)],
        dtype=np.int64,
    )
    member_demands = np.array([draw(value) for _ in flow_group])
    return member_demands, flow_group, flat_flow, flat_arc, capacity, num_groups


@settings(max_examples=100, deadline=None)
@given(problem=grouped_problems())
def test_grouped_fairness_matches_expanded_dense(problem):
    demands, flow_group, flat_group, flat_arc, capacity, num_groups = problem
    grouped = grouped_max_min_fair_rates(
        demands, flow_group, flat_group, flat_arc, capacity, num_groups=num_groups
    )
    # Expand the group incidence to one entry per member flow and run the
    # dense per-flow kernel on it: the equivalence contract is bit-for-bit.
    arcs_of_group = [[] for _ in range(num_groups)]
    for group, arc in zip(flat_group, flat_arc, strict=True):
        arcs_of_group[group].append(arc)
    expanded_flow = np.array(
        [
            index
            for index, group in enumerate(flow_group)
            for _ in arcs_of_group[group]
        ],
        dtype=np.int64,
    )
    expanded_arc = np.array(
        [arc for group in flow_group for arc in arcs_of_group[group]],
        dtype=np.int64,
    )
    dense = max_min_fair_rates(demands, expanded_flow, expanded_arc, capacity)
    assert np.array_equal(grouped, dense)


# --------------------------------------------------------------------- #
# Traffic aggregation: volume conservation and determinism
# --------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=12),
)
def test_aggregate_matrix_conserves_volume(seed, num_pairs):
    import random as random_module

    from repro.topology.fattree import build_fattree
    from repro.topology.fattree import hosts as fattree_hosts
    from repro.traffic import aggregate_matrix, aggregation_map

    topology = build_fattree(4)
    endpoints = fattree_hosts(topology)
    rng = random_module.Random(seed)
    demands = {}
    for _ in range(num_pairs):
        origin, destination = rng.sample(endpoints, 2)
        demands[(origin, destination)] = demands.get(
            (origin, destination), 0.0
        ) + rng.uniform(0.0, 1e8)
    matrix = TrafficMatrix(demands, name="hosts")
    aggregated = aggregate_matrix(topology, matrix, "aggregation")
    # Aggregation moves volume between endpoints but never creates or
    # destroys it, and it can only shrink the pair count.
    assert aggregated.total_bps == pytest.approx(matrix.total_bps, rel=1e-12)
    assert len(aggregated) <= len(matrix)
    assert aggregated.name == "hosts@aggregation"
    # Every aggregated endpoint is either an aggregation switch or an
    # original host kept because both ends share an ancestor.
    ancestors = aggregation_map(topology, endpoints, "aggregation")
    for origin, destination in aggregated.pairs():
        assert origin in ancestors.values() or origin in endpoints
        assert destination in ancestors.values() or destination in endpoints
    # Deterministic: re-aggregating yields the same demands bit for bit.
    again = aggregate_matrix(topology, matrix, "aggregation")
    assert dict(again.items()) == dict(aggregated.items())


# --------------------------------------------------------------------- #
# Workload-generator invariants
# --------------------------------------------------------------------- #
@given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=50))
def test_sine_fraction_bounded(index, period):
    value = sine_fraction(index, period)
    assert 0.0 <= value <= 1.0


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_google_series_positive_for_any_seed(seed):
    series = google_volume_series(num_days=1, seed=seed)
    assert (series > 0).all()
    changes = relative_changes(series)
    assert (changes >= 0).all()
