"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import CiscoRouterPowerModel, full_power, network_power
from repro.routing import Path, link_loads, solve_mcf
from repro.routing.ospf import ospf_invcap_routing
from repro.simulator import Flow, SimulatedNetwork, constant_demand
from repro.topology import random_connected_topology
from repro.traffic import TrafficMatrix, all_pairs, gravity_matrix
from repro.traffic.google_trace import google_volume_series, relative_changes
from repro.traffic.sinewave import sine_fraction
from repro.units import mbps

MODEL = CiscoRouterPowerModel()


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
@st.composite
def small_topologies(draw):
    """Random connected topologies with 4-10 nodes."""
    num_nodes = draw(st.integers(min_value=4, max_value=10))
    max_links = num_nodes * (num_nodes - 1) // 2
    num_links = draw(st.integers(min_value=num_nodes - 1, max_value=min(max_links, 2 * num_nodes)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_connected_topology(num_nodes, num_links, seed=seed)


@st.composite
def demand_matrices(draw):
    """Random demand matrices over small node-name sets."""
    names = [f"n{i}" for i in range(draw(st.integers(min_value=2, max_value=6)))]
    pairs = all_pairs(names)
    demands = {}
    for pair in pairs:
        if draw(st.booleans()):
            demands[pair] = draw(
                st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False)
            )
    return TrafficMatrix(demands)


# --------------------------------------------------------------------- #
# Traffic-matrix invariants
# --------------------------------------------------------------------- #
@given(demand_matrices(), st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
def test_scaling_scales_total_linearly(matrix, factor):
    scaled = matrix.scaled(factor)
    assert abs(scaled.total_bps - matrix.total_bps * factor) <= 1e-6 * max(
        1.0, matrix.total_bps * factor
    )
    assert len(scaled) == len(matrix)


@given(demand_matrices(), demand_matrices())
def test_merge_total_is_sum_of_totals(first, second):
    merged = first.merged_with(second)
    assert abs(merged.total_bps - (first.total_bps + second.total_bps)) <= 1e-6 * max(
        1.0, first.total_bps + second.total_bps
    )


# --------------------------------------------------------------------- #
# Topology and routing invariants
# --------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(small_topologies())
def test_random_topologies_are_connected_and_consistent(topology):
    assert topology.is_connected()
    assert topology.num_arcs == 2 * topology.num_links
    degrees = sum(topology.degree(node) for node in topology.nodes())
    assert degrees == 2 * topology.num_links


@settings(max_examples=20, deadline=None)
@given(small_topologies())
def test_ospf_paths_are_valid_and_loop_free(topology):
    routing = ospf_invcap_routing(topology)
    for _pair, path in routing.items():
        assert path.is_valid(topology)
        assert len(set(path.nodes)) == len(path.nodes)


@settings(max_examples=20, deadline=None)
@given(small_topologies(), st.floats(min_value=1e3, max_value=5e7, allow_nan=False))
def test_link_loads_conserve_total_volume(topology, per_pair_demand):
    routing = ospf_invcap_routing(topology)
    nodes = topology.nodes()
    demands = TrafficMatrix.uniform([(nodes[0], nodes[-1]), (nodes[-1], nodes[0])], per_pair_demand)
    loads = link_loads(topology, routing, demands)
    # Total volume leaving each origin equals its demand.
    for origin, destination in demands.pairs():
        outgoing = sum(
            load for (src, _dst), load in loads.items() if src == origin
        )
        incoming = sum(
            load for (_src, dst), load in loads.items() if dst == origin
        )
        assert outgoing - incoming >= -1e-6


@settings(max_examples=15, deadline=None)
@given(small_topologies())
def test_gravity_matrix_total_matches_request(topology):
    matrix = gravity_matrix(topology, total_traffic_bps=1e8)
    assert abs(matrix.total_bps - 1e8) <= 1.0
    assert all(demand >= 0 for _pair, demand in matrix.items())


@settings(max_examples=15, deadline=None)
@given(small_topologies())
def test_mcf_reports_utilisation_within_limit_when_feasible(topology):
    nodes = topology.nodes()
    demands = TrafficMatrix({(nodes[0], nodes[-1]): mbps(30)})
    result = solve_mcf(topology, demands)
    if result.feasible:
        assert result.max_utilisation <= 1.0 + 1e-6
        total_out = sum(
            load for (src, _), load in result.arc_loads.items() if src == nodes[0]
        )
        assert total_out >= mbps(30) - 1e-3


# --------------------------------------------------------------------- #
# Power-accounting invariants
# --------------------------------------------------------------------- #
@settings(max_examples=20, deadline=None)
@given(small_topologies(), st.integers(min_value=0, max_value=10_000))
def test_subset_power_never_exceeds_full_power(topology, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    nodes = topology.nodes()
    keep = [name for name in nodes if rng.random() < 0.7]
    subset = network_power(topology, MODEL, active_nodes=keep)
    total = full_power(topology, MODEL)
    assert subset.total_w <= total.total_w + 1e-9
    assert subset.chassis_w >= 0 and subset.ports_w >= 0


@settings(max_examples=20, deadline=None)
@given(small_topologies())
def test_power_is_monotone_in_active_links(topology):
    links = topology.link_keys()
    half = links[: len(links) // 2]
    partial = network_power(topology, MODEL, active_links=half)
    complete = network_power(topology, MODEL, active_links=links)
    assert partial.total_w <= complete.total_w + 1e-9


# --------------------------------------------------------------------- #
# Simulator rate-allocation invariants
# --------------------------------------------------------------------- #
@settings(max_examples=20, deadline=None)
@given(
    small_topologies(),
    st.lists(st.floats(min_value=1e3, max_value=2e8, allow_nan=False), min_size=1, max_size=5),
)
def test_max_min_allocation_respects_capacity_and_demand(topology, demands):
    network = SimulatedNetwork(topology, MODEL)
    nodes = topology.nodes()
    path_nodes = topology.shortest_path(nodes[0], nodes[-1])
    flows = [
        Flow(f"f{i}", nodes[0], nodes[-1], constant_demand(demand), path=Path.of(path_nodes))
        for i, demand in enumerate(demands)
    ]
    network.allocate_rates(flows, now_s=0.0)
    for flow in flows:
        assert flow.rate_bps <= flow.offered_load(0.0) + 1e-6
        assert flow.rate_bps >= 0.0
    for src, dst in zip(path_nodes, path_nodes[1:]):
        assert network.arc_load(src, dst) <= topology.arc(src, dst).capacity_bps + 1e-3


# --------------------------------------------------------------------- #
# Workload-generator invariants
# --------------------------------------------------------------------- #
@given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=50))
def test_sine_fraction_bounded(index, period):
    value = sine_fraction(index, period)
    assert 0.0 <= value <= 1.0


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_google_series_positive_for_any_seed(seed):
    series = google_volume_series(num_days=1, seed=seed)
    assert (series > 0).all()
    changes = relative_changes(series)
    assert (changes >= 0).all()
