"""Tests for the core topology data structures."""

import pytest

from repro.exceptions import (
    DuplicateElementError,
    PathNotFoundError,
    TopologyError,
    UnknownArcError,
    UnknownNodeError,
)
from repro.topology import Topology, link_key
from repro.units import mbps


def test_add_node_and_link_counts(diamond):
    assert diamond.num_nodes == 4
    assert diamond.num_links == 4
    assert diamond.num_arcs == 8
    assert len(diamond) == 4
    assert "a" in diamond
    assert "z" not in diamond


def test_duplicate_node_rejected(diamond):
    with pytest.raises(DuplicateElementError):
        diamond.add_node("a")


def test_duplicate_link_rejected(diamond):
    with pytest.raises(DuplicateElementError):
        diamond.add_link("a", "b", capacity_bps=mbps(10))
    with pytest.raises(DuplicateElementError):
        diamond.add_link("b", "a", capacity_bps=mbps(10))


def test_self_loop_rejected(diamond):
    with pytest.raises(TopologyError):
        diamond.add_link("a", "a", capacity_bps=mbps(10))


def test_link_to_unknown_node_rejected(diamond):
    with pytest.raises(UnknownNodeError):
        diamond.add_link("a", "zz", capacity_bps=mbps(10))


def test_non_positive_capacity_rejected(diamond):
    with pytest.raises(TopologyError):
        diamond.add_link("b", "c", capacity_bps=0.0)


def test_arcs_are_directed_views_of_links(diamond):
    arc = diamond.arc("a", "b")
    reverse = diamond.arc("b", "a")
    assert arc.capacity_bps == reverse.capacity_bps == mbps(100)
    assert arc.link_key == reverse.link_key == ("a", "b")


def test_asymmetric_capacities_supported():
    topo = Topology()
    topo.add_node("x")
    topo.add_node("y")
    topo.add_link("x", "y", capacity_bps=mbps(100), reverse_capacity_bps=mbps(10))
    assert topo.arc("x", "y").capacity_bps == mbps(100)
    assert topo.arc("y", "x").capacity_bps == mbps(10)


def test_unknown_arc_and_node_lookups_raise(diamond):
    with pytest.raises(UnknownArcError):
        diamond.arc("a", "d")
    with pytest.raises(UnknownArcError):
        diamond.link("a", "d")
    with pytest.raises(UnknownNodeError):
        diamond.node("missing")
    with pytest.raises(UnknownNodeError):
        diamond.neighbors("missing")


def test_neighbors_and_degree(diamond):
    assert sorted(diamond.neighbors("a")) == ["b", "c"]
    assert diamond.degree("a") == 2
    assert diamond.degree("d") == 2


def test_outgoing_arcs_and_incident_links(diamond):
    outgoing = diamond.outgoing_arcs("a")
    assert {arc.dst for arc in outgoing} == {"b", "c"}
    incident = diamond.incident_links("a")
    assert {link.key for link in incident} == {("a", "b"), ("a", "c")}


def test_total_capacity(diamond):
    assert diamond.total_capacity_bps("a") == pytest.approx(mbps(200))


def test_remove_link(diamond):
    diamond.remove_link("a", "b")
    assert not diamond.has_link("a", "b")
    assert not diamond.has_arc("b", "a")
    assert diamond.degree("a") == 1
    with pytest.raises(UnknownArcError):
        diamond.remove_link("a", "b")


def test_shortest_path_uses_weight(diamond):
    # Both a-b-d and a-c-d have the same hop count; by latency a-b-d wins.
    path = diamond.shortest_path("a", "d", weight="latency")
    assert path == ["a", "b", "d"]
    hops = diamond.shortest_path("a", "d", weight="hops")
    assert len(hops) == 3


def test_shortest_path_unreachable_raises():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(PathNotFoundError):
        topo.shortest_path("a", "b")


def test_path_latency_and_capacity(diamond):
    assert diamond.path_latency(["a", "b", "d"]) == pytest.approx(0.002)
    assert diamond.path_capacity(["a", "b", "d"]) == pytest.approx(mbps(100))
    assert diamond.path_capacity(["a"]) == float("inf")


def test_validate_path(diamond):
    assert diamond.validate_path(["a", "b", "d"])
    assert not diamond.validate_path(["a", "d"])
    assert not diamond.validate_path(["a", "zz"])
    assert not diamond.validate_path([])


def test_is_connected(diamond):
    assert diamond.is_connected()
    lonely = Topology()
    lonely.add_node("x")
    lonely.add_node("y")
    assert not lonely.is_connected()


def test_copy_is_deep(diamond):
    clone = diamond.copy()
    clone.remove_link("a", "b")
    assert diamond.has_link("a", "b")
    assert clone.num_links == diamond.num_links - 1


def test_subgraph_induced_by_nodes(diamond):
    sub = diamond.subgraph(["a", "b", "d"])
    assert sub.num_nodes == 3
    assert sub.has_link("a", "b") and sub.has_link("b", "d")
    assert not sub.has_node("c")


def test_subgraph_with_explicit_links(diamond):
    sub = diamond.subgraph(["a", "b", "c", "d"], active_links=[("a", "b"), ("b", "d")])
    assert sub.num_links == 2
    assert not sub.has_link("a", "c")


def test_subgraph_unknown_node_raises(diamond):
    with pytest.raises(UnknownNodeError):
        diamond.subgraph(["a", "zz"])


def test_to_networkx_has_invcap_weights(diamond):
    graph = diamond.to_networkx()
    assert graph.number_of_edges() == diamond.num_arcs
    assert graph["a"]["b"]["invcap"] == pytest.approx(1.0 / mbps(100))


def test_networkx_cache_invalidated_on_mutation(diamond):
    first = diamond.to_networkx()
    diamond.remove_link("a", "b")
    second = diamond.to_networkx()
    assert second.number_of_edges() == first.number_of_edges() - 2


def test_link_key_is_canonical():
    assert link_key("b", "a") == ("a", "b")
    assert link_key("a", "b") == ("a", "b")


def test_nodes_at_level_and_hosts():
    topo = Topology()
    topo.add_node("r1", level="core")
    topo.add_node("h1", kind="host", level="host", always_powered=True)
    topo.add_link("r1", "h1", capacity_bps=mbps(10))
    assert topo.nodes_at_level("core") == ["r1"]
    assert topo.hosts() == ["h1"]
    assert topo.routers() == ["r1"]
    assert topo.node("h1").always_powered
