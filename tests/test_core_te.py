"""Tests for the REsPoNseTE online controller on the flow-level simulator."""

import pytest

from repro.core import ResponsePlan, ResponseTEController, TEConfig
from repro.exceptions import ConfigurationError
from repro.routing import RoutingTable
from repro.simulator import (
    FailureSchedule,
    Flow,
    LinkState,
    SimulatedNetwork,
    SimulationEngine,
    constant_demand,
    stepped_demand,
)
from repro.topology import example_paths
from repro.units import mbps

PAIRS = [("A", "K"), ("C", "K")]


def _example_plan(topology, power_model):
    installed = example_paths()
    return ResponsePlan.from_tables(
        topology,
        power_model,
        always_on_table=RoutingTable(installed["always_on"], name="always-on"),
        on_demand_tables=[RoutingTable(installed["on_demand"], name="on-demand")],
        failover_table=RoutingTable(installed["failover"], name="failover"),
    )


@pytest.fixture
def click(click_topology):
    return click_topology


def _flows(rate_bps, count_per_source=2):
    flows = []
    for source in ("A", "C"):
        for index in range(count_per_source):
            flows.append(
                Flow(f"{source}{index}", source, "K", constant_demand(rate_bps))
            )
    return flows


def test_te_config_validation():
    with pytest.raises(ConfigurationError):
        TEConfig(utilisation_threshold=1.5)
    with pytest.raises(ConfigurationError):
        TEConfig(utilisation_threshold=0.5, release_threshold=0.9)


def test_te_aggregates_low_traffic_and_sleeps_links(click, cisco_model):
    plan = _example_plan(click, cisco_model)
    network = SimulatedNetwork(click, cisco_model, wake_delay_s=0.01)
    flows = _flows(mbps(1))
    controller = ResponseTEController(plan, TEConfig())
    engine = SimulationEngine(network, flows, controller, time_step_s=0.05)
    result = engine.run(duration_s=1.0)
    final = result.final_sample()
    assert final.total_rate_bps == pytest.approx(4 * mbps(1))
    # On-demand links (D-G, F-J and their tails) are asleep.
    assert network.link("D", "G").state == LinkState.SLEEPING
    assert network.link("F", "J").state == LinkState.SLEEPING
    assert network.link("E", "H").state == LinkState.ACTIVE
    assert all(controller.table_index_of(flow) == 0 for flow in flows)
    assert final.power_percent < 100.0


def test_te_activates_on_demand_under_load(click, cisco_model):
    plan = _example_plan(click, cisco_model)
    network = SimulatedNetwork(click, cisco_model, wake_delay_s=0.01)
    # 4 flows of 4 Mb/s cannot share the 10 Mb/s middle link at a 90% SLO.
    flows = _flows(mbps(4))
    controller = ResponseTEController(plan, TEConfig())
    engine = SimulationEngine(network, flows, controller, time_step_s=0.05)
    result = engine.run(duration_s=2.0)
    final = result.final_sample()
    assert final.total_rate_bps == pytest.approx(16 * 1e6, rel=0.05)
    assert any(controller.table_index_of(flow) > 0 for flow in flows)


def test_te_recovers_from_always_on_failure(click, cisco_model):
    plan = _example_plan(click, cisco_model)
    network = SimulatedNetwork(click, cisco_model, wake_delay_s=0.01)
    flows = _flows(mbps(1))
    controller = ResponseTEController(plan, TEConfig(failure_detection_delay_s=0.1))
    failures = FailureSchedule().fail_at(1.0, "E", "H")
    engine = SimulationEngine(
        network, flows, controller, time_step_s=0.02, failures=failures
    )
    result = engine.run(duration_s=3.0)
    times = result.times()
    rates = result.series("total_rate_bps")
    # Rate drops right after the failure but recovers within ~0.2 s.
    during = [rate for time, rate in zip(times, rates, strict=True) if 1.02 <= time <= 1.08]
    after = [rate for time, rate in zip(times, rates, strict=True) if time >= 1.5]
    assert min(during) == 0.0
    assert after[-1] == pytest.approx(4 * mbps(1), rel=0.01)
    assert all(controller.table_index_of(flow) > 0 for flow in flows)


def test_te_release_returns_traffic_to_always_on(click, cisco_model):
    plan = _example_plan(click, cisco_model)
    network = SimulatedNetwork(click, cisco_model, wake_delay_s=0.01)
    # Demand starts high (forcing on-demand activation) then drops.
    flows = []
    for source in ("A", "C"):
        for index in range(2):
            flows.append(
                Flow(
                    f"{source}{index}",
                    source,
                    "K",
                    stepped_demand([(0.0, mbps(4)), (2.0, mbps(0.5))]),
                )
            )
    controller = ResponseTEController(plan, TEConfig(release_threshold=0.5))
    engine = SimulationEngine(network, flows, controller, time_step_s=0.05)
    engine.run(duration_s=4.0)
    assert all(controller.table_index_of(flow) == 0 for flow in flows)
    assert network.link("D", "G").state == LinkState.SLEEPING


def test_te_start_time_defers_control(click, cisco_model):
    plan = _example_plan(click, cisco_model)
    network = SimulatedNetwork(click, cisco_model, wake_delay_s=0.01)
    flows = _flows(mbps(1))
    controller = ResponseTEController(
        plan, TEConfig(start_time_s=5.0, initial_table_index=1, probe_interval_s=0.1)
    )
    engine = SimulationEngine(network, flows, controller, time_step_s=0.05)
    result = engine.run(duration_s=2.0, start_s=4.0)
    # Before the TE start nothing sleeps and traffic remains on on-demand paths.
    early = [s for s in result.samples if s.time_s < 5.0]
    late = [s for s in result.samples if s.time_s > 5.5]
    assert all(sample.sleeping_links == 0 for sample in early)
    assert late[-1].sleeping_links > 0
    assert all(controller.table_index_of(flow) == 0 for flow in flows)
    assert controller.probe_interval_s == pytest.approx(0.1)
