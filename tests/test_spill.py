"""Tests for the per-interval NDJSON series spill (bounded-memory replay)."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.scenario import (
    PowerSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
)
from repro.scenario.engine import run_built_scenario
from repro.scenario.spill import SeriesSpill, iter_spill_rows, read_spill
from repro.scenario.timeline import SpilledSchemeRun


def spec(**overrides):
    settings = dict(
        name="spill-fattree",
        topology=TopologySpec("fattree", k=4),
        traffic=TrafficSpec("sinewave", mode="near", num_intervals=3, seed=4),
        power=PowerSpec("commodity", ports_at_peak=4),
        schemes=(SchemeSpec("response", num_paths=3, k=4), SchemeSpec("ecmp")),
    )
    settings.update(overrides)
    return ScenarioSpec(**settings)


def strip_wall_clock(payload):
    """Drop the only fields allowed to differ between replays: wall-clock."""
    payload = json.loads(json.dumps(payload))  # deep copy
    payload.pop("compute_seconds", None)
    for records in payload.get("reactions", {}).values():
        for record in records:
            if isinstance(record, dict):
                record.pop("compute_seconds", None)
    return payload


def test_spilled_result_identical_to_in_memory(tmp_path):
    built = build_scenario(spec())
    in_memory = run_built_scenario(built)
    sidecar = tmp_path / "series.ndjson"
    spilled = run_built_scenario(build_scenario(spec()), spill_path=sidecar)
    assert strip_wall_clock(spilled.to_dict()) == strip_wall_clock(
        in_memory.to_dict()
    )
    assert sidecar.exists()


def test_spill_rows_are_wellformed_ndjson(tmp_path):
    sidecar = tmp_path / "series.ndjson"
    built = build_scenario(spec())
    run_built_scenario(built, spill_path=sidecar)
    lines = sidecar.read_text().splitlines()
    assert len(lines) == 3  # one row per interval
    for index, line in enumerate(lines):
        row = json.loads(line)
        assert row["index"] == index
        assert set(row) == {"index", "time_s", "events", "schemes"}
        assert set(row["schemes"]) == {"response", "ecmp"}
        for metrics in row["schemes"].values():
            assert set(metrics) == {
                "power_percent",
                "max_utilisation",
                "violation",
                "recomputed",
                "compute_seconds",
            }


def test_spilled_scheme_runs_hold_no_outcomes(tmp_path):
    sidecar = tmp_path / "series.ndjson"
    built = build_scenario(spec())
    result = run_built_scenario(built, spill_path=sidecar)
    # Bounded memory: the run keeps no per-interval outcome objects; the
    # series are re-read from the sidecar on demand.
    for label in ("response", "ecmp"):
        series = result.power_percent[label]
        assert len(series) == 3
    rows = list(iter_spill_rows(sidecar))
    assert len(rows) == 3
    for row in rows:
        assert set(row["schemes"]) == set(result.power_percent)


def test_spilled_scheme_run_requires_sidecar():
    orphan = SpilledSchemeRun(
        label="x", outcomes=[], details={}, recomputations=0, spill=None
    )
    with pytest.raises(ConfigurationError):
        orphan.power_percent()


def test_read_spill_conventions(tmp_path):
    sidecar = tmp_path / "series.ndjson"
    with SeriesSpill(sidecar) as spill:
        spill.write_step(
            index=0,
            time_s=0.0,
            events=[],
            schemes={
                "s": {
                    "power_percent": 50.0,
                    "max_utilisation": None,
                    "violation": None,
                    "recomputed": False,
                    "compute_seconds": 0.1,
                }
            },
        )
        spill.write_step(
            index=1,
            time_s=900.0,
            events=["link-down"],
            schemes={
                "s": {
                    "power_percent": 60.0,
                    "max_utilisation": 0.5,
                    "violation": False,
                    "recomputed": True,
                    "compute_seconds": 0.2,
                }
            },
        )
    payload = read_spill(sidecar)
    assert payload["times_s"] == [0.0, 900.0]
    # Fired events are flattened across intervals, like TimelineRun.fired.
    assert payload["events"] == ["link-down"]
    series = payload["schemes"]["s"]
    assert series["power_percent"] == [50.0, 60.0]
    # SchemeRun convention: a None utilisation becomes 0.0 when any interval
    # reported a real value; an all-None series collapses to [].
    assert series["max_utilisation"] == [0.0, 0.5]
    assert series["recomputed"] == [False, True]


def test_read_spill_all_none_utilisation_collapses(tmp_path):
    sidecar = tmp_path / "series.ndjson"
    with SeriesSpill(sidecar) as spill:
        spill.write_step(
            index=0,
            time_s=0.0,
            events=[],
            schemes={
                "s": {
                    "power_percent": 10.0,
                    "max_utilisation": None,
                    "violation": None,
                    "recomputed": False,
                    "compute_seconds": 0.0,
                }
            },
        )
    assert read_spill(sidecar)["schemes"]["s"]["max_utilisation"] == []


def test_spill_rejects_writes_after_close(tmp_path):
    spill = SeriesSpill(tmp_path / "series.ndjson")
    spill.close()
    spill.close()  # idempotent
    with pytest.raises(ConfigurationError):
        spill.write_step(index=0, time_s=0.0, events=[], schemes={})


def test_spill_round_trips_floats_exactly(tmp_path):
    # JSON repr of a float round-trips bit-for-bit, which is what makes the
    # spilled series identical to the in-memory ones.
    value = 0.1 + 0.2  # not representable prettily
    sidecar = tmp_path / "series.ndjson"
    with SeriesSpill(sidecar) as spill:
        spill.write_step(
            index=0,
            time_s=value,
            events=[],
            schemes={
                "s": {
                    "power_percent": value,
                    "max_utilisation": value,
                    "violation": False,
                    "recomputed": False,
                    "compute_seconds": value,
                }
            },
        )
    row = next(iter_spill_rows(sidecar))
    assert row["time_s"] == value
    assert row["schemes"]["s"]["power_percent"] == value
