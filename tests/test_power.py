"""Tests for the power models and network-wide power accounting."""

import pytest

from repro.exceptions import TopologyError
from repro.power import (
    AlternativeHardwarePowerModel,
    CHASSIS_REDUCTION_FACTOR,
    CISCO_CHASSIS_POWER_W,
    CiscoRouterPowerModel,
    CommoditySwitchPowerModel,
    energy_savings_percentage,
    full_power,
    line_card_power_for_capacity,
    network_power,
    power_percentage,
)
from repro.power.cisco import (
    OC3_PORT_POWER_W,
    OC48_PORT_POWER_W,
    OC192_PORT_POWER_W,
)
from repro.topology import Topology
from repro.units import gbps, mbps


# --------------------------------------------------------------------- #
# Per-element models
# --------------------------------------------------------------------- #
def test_line_card_power_classes():
    assert line_card_power_for_capacity(mbps(155)) == OC3_PORT_POWER_W
    assert line_card_power_for_capacity(gbps(2.5)) == OC48_PORT_POWER_W
    assert line_card_power_for_capacity(gbps(10)) == OC192_PORT_POWER_W
    # Intermediate speeds round up to the next class.
    assert line_card_power_for_capacity(gbps(1)) == OC48_PORT_POWER_W


def test_cisco_chassis_dominates_router_budget(diamond, cisco_model):
    node = diamond.node("a")
    assert cisco_model.chassis_power_w(node) == CISCO_CHASSIS_POWER_W
    arc = diamond.arc("a", "b")
    assert cisco_model.port_power_w(arc) == OC3_PORT_POWER_W


def test_cisco_amplifier_power_by_length():
    model = CiscoRouterPowerModel()
    topo = Topology()
    topo.add_node("x")
    topo.add_node("y")
    topo.add_link("x", "y", capacity_bps=gbps(10), length_km=400.0)
    arc = topo.arc("x", "y")
    assert model.amplifier_power_w(arc) == pytest.approx(5 * 1.2)
    short = CiscoRouterPowerModel(include_amplifiers=False)
    assert short.amplifier_power_w(arc) == 0.0


def test_alternative_model_reduces_chassis_only(diamond):
    cisco = CiscoRouterPowerModel()
    alternative = AlternativeHardwarePowerModel()
    node = diamond.node("a")
    arc = diamond.arc("a", "b")
    assert alternative.chassis_power_w(node) == pytest.approx(
        cisco.chassis_power_w(node) / CHASSIS_REDUCTION_FACTOR
    )
    assert alternative.port_power_w(arc) == cisco.port_power_w(arc)


def test_commodity_model_fixed_fraction():
    model = CommoditySwitchPowerModel(peak_power_w=100.0, fixed_fraction=0.9, ports_at_peak=10)
    assert model.fixed_power_w == pytest.approx(90.0)
    assert model.per_port_power_w == pytest.approx(1.0)
    assert model.peak_power_w == 100.0


def test_commodity_model_validates_arguments():
    with pytest.raises(ValueError):
        CommoditySwitchPowerModel(fixed_fraction=1.5)
    with pytest.raises(ValueError):
        CommoditySwitchPowerModel(ports_at_peak=0)


def test_host_nodes_draw_no_power(fattree4, commodity_model):
    host = fattree4.node("host0_0_0")
    assert commodity_model.chassis_power_w(host) == 0.0
    arc = fattree4.arc("host0_0_0", "edge0_0")
    assert commodity_model.port_power_w(arc) == 0.0
    # The switch-side port of the same link does draw power.
    reverse = fattree4.arc("edge0_0", "host0_0_0")
    assert commodity_model.port_power_w(reverse) > 0.0


# --------------------------------------------------------------------- #
# Network accounting
# --------------------------------------------------------------------- #
def test_full_power_breakdown(diamond, cisco_model):
    breakdown = full_power(diamond, cisco_model)
    assert breakdown.chassis_w == pytest.approx(4 * CISCO_CHASSIS_POWER_W)
    assert breakdown.ports_w == pytest.approx(8 * OC3_PORT_POWER_W)
    assert breakdown.total_w == pytest.approx(
        breakdown.chassis_w + breakdown.ports_w + breakdown.amplifiers_w
    )
    assert breakdown.as_dict()["total_w"] == pytest.approx(breakdown.total_w)


def test_network_power_subset_is_smaller(diamond, cisco_model):
    subset = network_power(
        diamond, cisco_model, active_nodes=["a", "b", "d"], active_links=[("a", "b"), ("b", "d")]
    )
    assert subset.total_w < full_power(diamond, cisco_model).total_w
    assert subset.chassis_w == pytest.approx(3 * CISCO_CHASSIS_POWER_W)
    assert subset.ports_w == pytest.approx(4 * OC3_PORT_POWER_W)


def test_links_with_inactive_endpoint_do_not_count(diamond, cisco_model):
    subset = network_power(diamond, cisco_model, active_nodes=["a", "b"])
    # Only the a-b link has both endpoints active.
    assert subset.ports_w == pytest.approx(2 * OC3_PORT_POWER_W)


def test_unknown_active_elements_rejected(diamond, cisco_model):
    with pytest.raises(TopologyError):
        network_power(diamond, cisco_model, active_nodes=["zz"])
    with pytest.raises(TopologyError):
        network_power(diamond, cisco_model, active_links=[("a", "zz")])


def test_always_powered_nodes_counted_even_if_omitted(cisco_model):
    topo = Topology()
    topo.add_node("edge", always_powered=True)
    topo.add_node("core")
    topo.add_link("edge", "core", capacity_bps=mbps(100))
    subset = network_power(topo, cisco_model, active_nodes=["core"])
    assert subset.chassis_w == pytest.approx(2 * CISCO_CHASSIS_POWER_W)


def test_power_percentage_and_savings(diamond, cisco_model):
    percent = power_percentage(
        diamond, cisco_model, active_nodes=["a", "b", "d"], active_links=[("a", "b"), ("b", "d")]
    )
    assert 0.0 < percent < 100.0
    assert energy_savings_percentage(
        diamond, cisco_model, active_nodes=["a", "b", "d"], active_links=[("a", "b"), ("b", "d")]
    ) == pytest.approx(100.0 - percent)
    assert power_percentage(diamond, cisco_model) == pytest.approx(100.0)


def test_fattree_full_power_counts_only_switches(fattree4, commodity_model):
    breakdown = full_power(fattree4, commodity_model)
    num_switches = 20
    assert breakdown.chassis_w == pytest.approx(num_switches * commodity_model.fixed_power_w)
    # 48 links, but host-side ports are free: 16 host links contribute one
    # port each, 32 switch-switch links contribute two ports each.
    expected_ports = (16 * 1 + 32 * 2) * commodity_model.per_port_power_w
    assert breakdown.ports_w == pytest.approx(expected_ports)
