"""Tests for the campaign subsystem: spec expansion, store, resume, report."""

import json
import sqlite3

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    deviation_from_best,
    filter_rows,
    format_table,
    parse_filters,
    rows_to_csv,
    rows_to_json,
    run_campaign,
    scheme_dominance,
    summarise,
)
from repro.exceptions import ConfigurationError
from repro.experiments.runner import main
from repro.scenario import ScenarioResult


def base_scenario():
    """A cheap stack whose two schemes produce different power numbers."""
    return {
        "topology": "geant",
        "traffic": {
            "name": "uniform",
            "params": {"num_pairs": 6, "num_endpoints": 5, "flow_bps": 1e8, "seed": 0},
        },
        "power": "cisco",
        "schemes": [{"name": "response", "params": {"num_paths": 2, "k": 2}}, "ecmp"],
    }


def campaign_dict(name="grid", axes=None):
    return {
        "name": name,
        "base": base_scenario(),
        "axes": axes
        if axes is not None
        else {"seed": [0, 1], "set": {"traffic.flow_bps": [1e8, 1.5e8]}},
    }


def eight_point_campaign(name="grid8"):
    return campaign_dict(
        name,
        axes={
            "seed": [0, 1],
            "set": {
                "traffic.flow_bps": [1e8, 1.5e8],
                "scenario.utilisation_threshold": [0.85, 0.9],
            },
        },
    )


# --------------------------------------------------------------------- #
# Spec expansion
# --------------------------------------------------------------------- #
def test_campaign_spec_round_trip_and_identity():
    spec = CampaignSpec.from_dict(campaign_dict())
    rebuilt = CampaignSpec.from_json(spec.to_json())
    assert rebuilt.to_dict() == spec.to_dict()
    assert rebuilt.campaign_id() == spec.campaign_id()
    # A different axis value is a different campaign.
    other = CampaignSpec.from_dict(campaign_dict(axes={"seed": [0, 1, 2]}))
    assert other.campaign_id() != spec.campaign_id()


def test_campaign_spec_rejects_unknown_keys_and_axes():
    with pytest.raises(ConfigurationError):
        CampaignSpec.from_dict({"name": "x", "base": base_scenario(), "extra": 1})
    with pytest.raises(ConfigurationError):
        CampaignSpec.from_dict(
            {"name": "x", "base": base_scenario(), "axes": {"nope": [1]}}
        )
    with pytest.raises(ConfigurationError):
        CampaignSpec.from_dict({"name": "x"})  # no base
    with pytest.raises(ConfigurationError, match="scenario spec mapping"):
        CampaignSpec.from_dict({"name": "x", "base": ["not", "a", "mapping"]})
    with pytest.raises(ConfigurationError):  # empty axis list
        CampaignSpec.from_dict(
            {"name": "x", "base": base_scenario(), "axes": {"seed": []}}
        )
    with pytest.raises(ConfigurationError):  # non-integer seed
        CampaignSpec.from_dict(
            {"name": "x", "base": base_scenario(), "axes": {"seed": ["a"]}}
        )
    with pytest.raises(ConfigurationError):  # set target without a dot
        CampaignSpec.from_dict(
            {"name": "x", "base": base_scenario(), "axes": {"set": {"seed": [1]}}}
        )


def test_expand_grid_order_names_and_hashes():
    spec = CampaignSpec.from_dict(campaign_dict())
    points = spec.expand()
    assert spec.grid_size() == len(points) == 4
    # Canonical axis order, rightmost axis fastest.
    assert [point.axes for point in points] == [
        {"seed": 0, "traffic.flow_bps": 1e8},
        {"seed": 0, "traffic.flow_bps": 1.5e8},
        {"seed": 1, "traffic.flow_bps": 1e8},
        {"seed": 1, "traffic.flow_bps": 1.5e8},
    ]
    assert points[0].name.startswith("grid/seed=0/")
    assert len({point.config_hash for point in points}) == 4
    # The applied coordinates landed in each scenario spec.
    assert points[3].spec.traffic.params["seed"] == 1
    assert points[3].spec.traffic.params["flow_bps"] == 1.5e8
    # Expansion is deterministic.
    again = CampaignSpec.from_dict(campaign_dict()).expand()
    assert [point.config_hash for point in again] == [
        point.config_hash for point in points
    ]


def test_expand_component_scheme_and_event_axes():
    spec = CampaignSpec.from_dict(
        {
            "name": "axes",
            "base": base_scenario(),
            "axes": {
                "topology": ["geant", {"name": "fattree", "params": {"k": 4}}],
                "schemes": [["ospf"], [{"name": "response", "params": {"k": 2}}, "ecmp"]],
                "events": [
                    [],
                    [{"name": "link-failure", "params": {"time_s": 900.0, "link": ["DE", "FR"]}}],
                ],
            },
        }
    )
    points = spec.expand()
    assert len(points) == 8
    labels = {point.axes["schemes"] for point in points}
    assert labels == {"ospf", "response+ecmp"}
    assert {point.axes["events"] for point in points} == {"none", "link-failure"}
    assert {point.axes["topology"] for point in points} == {"geant", "fattree(k=4)"}
    eventful = [point for point in points if point.axes["events"] != "none"]
    assert all(point.spec.events for point in eventful)


def test_expand_rejects_redundant_axes_and_invalid_points():
    # seed axis + a set range over traffic.seed collapse to equal hashes.
    redundant = CampaignSpec.from_dict(
        campaign_dict(axes={"seed": [0, 1], "set": {"traffic.seed": [0, 1]}})
    )
    with pytest.raises(ConfigurationError, match="identical scenarios"):
        redundant.expand()
    # Shorthand and explicit forms of the same component also collide
    # (identity compares normalised specs, not raw axis entries).
    shorthand = CampaignSpec.from_dict(
        campaign_dict(axes={"topology": ["geant", {"name": "geant", "params": {}}]})
    )
    with pytest.raises(ConfigurationError, match="identical scenarios"):
        shorthand.expand()
    # An unknown component name fails at expansion, naming the point.
    unknown = CampaignSpec.from_dict(
        campaign_dict(axes={"topology": ["geant", "not-a-topology"]})
    )
    with pytest.raises(ConfigurationError, match="not-a-topology"):
        unknown.expand()
    # A grid whose points name no schemes is rejected at expansion.
    base = base_scenario()
    del base["schemes"]
    no_schemes = CampaignSpec.from_dict(
        {"name": "x", "base": base, "axes": {"seed": [0]}}
    )
    with pytest.raises(ConfigurationError, match="schemes"):
        no_schemes.expand()


# --------------------------------------------------------------------- #
# Store
# --------------------------------------------------------------------- #
def test_store_register_is_idempotent_and_preserves_status(tmp_path):
    spec = CampaignSpec.from_dict(campaign_dict())
    points = spec.expand()
    store_path = tmp_path / "store.sqlite"
    with CampaignStore(store_path) as store:
        campaign_id = store.register_campaign(spec, points)
        run_campaign(spec, store_path=store_path, max_points=1)
        statuses = store.point_statuses(campaign_id)
        assert list(statuses.values()).count("done") == 1
        # Re-registering must not reset the completed point.
        assert store.register_campaign(spec, points) == campaign_id
        assert store.point_statuses(campaign_id) == statuses
        assert len(store.campaigns()) == 1


def test_store_records_results_and_metrics(tmp_path):
    spec = CampaignSpec.from_dict(campaign_dict())
    store_path = tmp_path / "store.sqlite"
    summary = run_campaign(spec, store_path=store_path)
    assert (summary.executed, summary.failed, summary.remaining) == (4, 0, 0)
    with CampaignStore(store_path) as store:
        counts = store.status_counts(summary.campaign_id)
        assert counts == {"done": 4, "error": 0, "pending": 0, "total": 4}
        points = store.points(summary.campaign_id)
        result = store.result(points[0]["config_hash"])
        assert isinstance(result, ScenarioResult)
        assert result.config_hash == points[0]["config_hash"]
        assert set(result.labels()) == {"response", "ecmp"}
        rows = store.metric_rows(summary.campaign_id)
        assert len(rows) == 8  # 4 points x 2 schemes
        assert {row["scheme"] for row in rows} == {"response", "ecmp"}
        assert all("mean_power_percent" in row and "seed" in row for row in rows)
        # iter_results pairs each point row with its parsed result.
        pairs = list(store.iter_results(summary.campaign_id))
        assert len(pairs) == 4
        assert pairs[0][0]["axes"] == {"seed": 0, "traffic.flow_bps": 1e8}


def test_store_points_filters_and_paginates_sql_side(tmp_path):
    """``points(status=, limit=, offset=)`` slices in SQL (service satellite)."""
    spec = CampaignSpec.from_dict(campaign_dict())
    store_path = tmp_path / "store.sqlite"
    run_campaign(spec, store_path=store_path, max_points=3)
    with CampaignStore(store_path) as store:
        campaign_id = store.find_campaign()["campaign_id"]
        # One pending point left; mark it failed to get all three statuses...
        pending = store.points(campaign_id, status="pending")
        assert len(pending) == 1
        all_points = spec.expand()
        failed = next(
            point
            for point in all_points
            if point.config_hash == pending[0]["config_hash"]
        )
        store.record_failure(campaign_id, failed, "boom", 0.0)

        done = store.points(campaign_id, status="done")
        assert [row["status"] for row in done] == ["done"] * 3
        assert [row["point_index"] for row in done] == sorted(
            row["point_index"] for row in done
        )
        errors = store.points(campaign_id, status="error")
        assert len(errors) == 1 and errors[0]["error"] == "boom"
        assert store.points(campaign_id, status="pending") == []

        # Pagination composes with the filter, in grid order.
        assert [row["point_index"] for row in store.points(campaign_id, limit=2)] == [
            row["point_index"] for row in store.points(campaign_id)[:2]
        ]
        page = store.points(campaign_id, status="done", limit=1, offset=1)
        assert [row["point_index"] for row in page] == [done[1]["point_index"]]
        # offset without limit walks to the end; limit=0 is an empty page.
        assert len(store.points(campaign_id, offset=3)) == 1
        assert store.points(campaign_id, limit=0) == []
        assert len(store.points(campaign_id, offset=99)) == 0

        # Decoded columns survive the filtered path.
        assert all("axes" in row and "spec" in row for row in done)

        for bad in (
            dict(status="bogus"),
            dict(limit=-1),
            dict(offset=-1),
        ):
            with pytest.raises(ConfigurationError):
                store.points(campaign_id, **bad)


def test_store_adopts_results_shared_by_config_hash(tmp_path):
    store_path = tmp_path / "store.sqlite"
    small = CampaignSpec.from_dict(campaign_dict("shared", axes={"seed": [0, 1]}))
    run_campaign(small, store_path=store_path)
    # Same campaign name, superset axis: the two overlapping points keep the
    # same point names, hence the same config hashes -> adopted, not re-run.
    bigger = CampaignSpec.from_dict(campaign_dict("shared", axes={"seed": [0, 1, 2]}))
    summary = run_campaign(bigger, store_path=store_path)
    assert summary.total_points == 3
    assert summary.adopted == 2
    assert summary.completed_before == 2
    assert summary.executed == 1
    assert summary.remaining == 0


def test_store_rejects_non_sqlite_file(tmp_path):
    not_a_store = tmp_path / "campaign.json"
    not_a_store.write_text(json.dumps(campaign_dict()))
    with pytest.raises(ConfigurationError, match="not a SQLite campaign store"):
        CampaignStore(not_a_store)


def test_store_rejects_unknown_schema_version(tmp_path):
    store_path = tmp_path / "old.sqlite"
    connection = sqlite3.connect(store_path)
    connection.execute("PRAGMA user_version = 99")
    connection.commit()
    connection.close()
    with pytest.raises(ConfigurationError, match="schema version"):
        CampaignStore(store_path)


def test_store_loads_rows_missing_post_events_fields(tmp_path):
    """Older stored rows (pre-events schema) must still parse (satellite)."""
    store_path = tmp_path / "store.sqlite"
    legacy_row = {
        "name": "legacy",
        "config_hash": "cafe" * 16,
        "times_s": [0.0, 900.0],
        "power_percent": {"response": [40.0, 50.0]},
        "recomputations": {"response": 1},
        # No events / compute_seconds / violations / reaction / spec fields.
    }
    with CampaignStore(store_path) as store:
        store._connection.execute(
            "INSERT INTO results (config_hash, result_json, created_at) "
            "VALUES (?, ?, ?)",
            (legacy_row["config_hash"], json.dumps(legacy_row), "2026-01-01"),
        )
        store._connection.commit()
        result = store.result(legacy_row["config_hash"])
    assert result.power_percent == {"response": [40.0, 50.0]}
    assert result.events == []
    assert result.compute_seconds == {}
    assert result.violations == {}
    assert result.reaction == {}


# --------------------------------------------------------------------- #
# Execution, resume and error isolation
# --------------------------------------------------------------------- #
def test_rerun_of_completed_campaign_executes_nothing(tmp_path):
    spec = CampaignSpec.from_dict(campaign_dict())
    store_path = tmp_path / "store.sqlite"
    first = run_campaign(spec, store_path=store_path)
    assert first.executed == 4
    second = run_campaign(spec, store_path=store_path)
    assert second.executed == 0
    assert second.completed_before == 4
    assert second.remaining == 0


def test_max_points_zero_reports_whole_grid_as_remaining(tmp_path):
    spec = CampaignSpec.from_dict(campaign_dict())
    summary = run_campaign(spec, store_path=tmp_path / "store.sqlite", max_points=0)
    assert summary.executed == 0
    assert summary.remaining == summary.total_points == 4


def test_interrupted_campaign_resumes_and_matches_clean_serial_run(tmp_path):
    """The resume guarantee: kill after N points, re-run, stores match."""
    spec = CampaignSpec.from_dict(eight_point_campaign())
    clean_path = tmp_path / "clean.sqlite"
    clean = run_campaign(spec, store_path=clean_path)
    assert (clean.executed, clean.failed) == (8, 0)

    resumed_path = tmp_path / "resumed.sqlite"
    interrupted = run_campaign(spec, store_path=resumed_path, max_points=3)
    assert interrupted.executed == 3
    assert interrupted.remaining == 5
    resumed = run_campaign(spec, store_path=resumed_path)
    assert resumed.completed_before == 3  # the interrupted run's work survived
    assert resumed.executed == 5  # only the missing points ran
    assert resumed.remaining == 0

    with CampaignStore(clean_path) as a, CampaignStore(resumed_path) as b:
        dump_clean = a.canonical_dump(clean.campaign_id)
        dump_resumed = b.canonical_dump(resumed.campaign_id)
    assert dump_resumed == dump_clean  # bit-for-bit, modulo wall-clock fields


def test_parallel_campaign_matches_serial_store(tmp_path):
    spec = CampaignSpec.from_dict(eight_point_campaign("par"))
    serial_path = tmp_path / "serial.sqlite"
    parallel_path = tmp_path / "parallel.sqlite"
    serial = run_campaign(spec, store_path=serial_path)
    parallel = run_campaign(
        spec, store_path=parallel_path, parallel=True, processes=2, chunk_size=3
    )
    assert parallel.executed == serial.executed == 8
    with CampaignStore(serial_path) as a, CampaignStore(parallel_path) as b:
        assert b.canonical_dump(parallel.campaign_id) == a.canonical_dump(
            serial.campaign_id
        )


def test_failing_point_is_recorded_not_raised(tmp_path):
    bad_traffic = {
        "name": "uniform",
        # flow_bps AND total_traffic_bps: the builder raises at build time.
        "params": {
            "num_pairs": 6,
            "num_endpoints": 5,
            "flow_bps": 1e8,
            "total_traffic_bps": 1e9,
            "seed": 0,
        },
    }
    spec = CampaignSpec.from_dict(
        campaign_dict(
            "faulty",
            axes={"traffic": [base_scenario()["traffic"], bad_traffic]},
        )
    )
    store_path = tmp_path / "store.sqlite"
    summary = run_campaign(spec, store_path=store_path)
    assert summary.executed == 2
    assert summary.failed == 1
    assert summary.remaining == 1
    assert "flow_bps" in summary.errors[0]
    with CampaignStore(store_path) as store:
        counts = store.status_counts(summary.campaign_id)
        assert counts["done"] == 1 and counts["error"] == 1
        errored = [
            point
            for point in store.points(summary.campaign_id)
            if point["status"] == "error"
        ]
        assert "ConfigurationError" in errored[0]["error"]  # full traceback kept
    # Re-running retries the failed point (and only it).
    retry = run_campaign(spec, store_path=store_path)
    assert retry.executed == 1
    assert retry.failed == 1


# --------------------------------------------------------------------- #
# Report layer
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def reported(tmp_path_factory):
    """One completed 4-point campaign and its metric rows."""
    store_path = tmp_path_factory.mktemp("campaign") / "store.sqlite"
    spec = CampaignSpec.from_dict(campaign_dict())
    summary = run_campaign(spec, store_path=store_path)
    with CampaignStore(store_path) as store:
        rows = store.metric_rows(summary.campaign_id)
    return store_path, summary, rows


def test_filter_rows_by_axis_and_scheme(reported):
    _store_path, _summary, rows = reported
    assert len(filter_rows(rows, {"scheme": "response"})) == 4
    assert len(filter_rows(rows, parse_filters(["seed=0"]))) == 4
    assert len(filter_rows(rows, {"scheme": "response", "seed": "1"})) == 2
    with pytest.raises(ConfigurationError, match="unknown filter"):
        filter_rows(rows, {"nope": "1"})
    with pytest.raises(ConfigurationError):
        parse_filters(["no-equals-sign"])


def test_summarise_groups_and_percentiles(reported):
    _store_path, _summary, rows = reported
    by_scheme = summarise(rows, metric="mean_power_percent", group_by=("scheme",))
    assert sorted(record["scheme"] for record in by_scheme) == ["ecmp", "response"]
    assert all(record["count"] == 4 for record in by_scheme)
    response = next(r for r in by_scheme if r["scheme"] == "response")
    ecmp = next(r for r in by_scheme if r["scheme"] == "ecmp")
    assert response["mean"] < ecmp["mean"]  # REsPoNse saves more power
    by_seed = summarise(rows, group_by=("scheme", "seed"))
    assert len(by_seed) == 4 and all(record["count"] == 2 for record in by_seed)


def test_dominance_and_deviation_hooks(reported):
    _store_path, _summary, rows = reported
    dominance = scheme_dominance(rows, metric="mean_power_percent")
    assert dominance["points"] == 4
    assert dominance["dominant_scheme"] == "response"
    assert dominance["winners"]["response"] == 1.0
    assert dominance["dominant_fraction"] == 1.0
    assert dominance["num_winning_schemes"] == 1
    deviation = deviation_from_best(rows, metric="mean_power_percent")
    by_scheme = {record["scheme"]: record for record in deviation}
    assert by_scheme["response"]["max"] == 0.0  # the winner deviates by zero
    assert by_scheme["ecmp"]["min"] > 0.0
    # Savings flip the direction: higher is better, winner unchanged.
    savings = scheme_dominance(rows, metric="mean_savings_percent")
    assert savings["dominant_scheme"] == "response"


def test_report_exports_csv_json_table(reported):
    _store_path, _summary, rows = reported
    csv_text = rows_to_csv(rows)
    header = csv_text.splitlines()[0]
    assert "scheme" in header and "mean_power_percent" in header and "seed" in header
    assert len(csv_text.strip().splitlines()) == len(rows) + 1
    parsed = json.loads(rows_to_json(rows))
    assert len(parsed) == len(rows)
    table = format_table(summarise(rows))
    assert "scheme" in table and "response" in table
    assert format_table([]) == "(no rows)"


# --------------------------------------------------------------------- #
# Command line
# --------------------------------------------------------------------- #
def test_cli_campaign_run_status_report(tmp_path, capsys):
    spec_path = tmp_path / "campaign.json"
    spec_path.write_text(json.dumps(campaign_dict("cli-grid")))
    store_path = tmp_path / "store.sqlite"

    # Bounded first slice, then a resuming completion.
    assert (
        main(
            [
                "run-campaign",
                "--spec",
                str(spec_path),
                "--store",
                str(store_path),
                "--max-points",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "2 executed" in out and "2 remaining" in out
    assert (
        main(["run-campaign", "--spec", str(spec_path), "--store", str(store_path)])
        == 0
    )
    out = capsys.readouterr().out
    assert "2 already done" in out and "0 remaining" in out

    assert main(["campaign-status", "--store", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "cli-grid" in out
    assert (
        main(
            ["campaign-status", "--store", str(store_path), "--campaign", "cli-grid"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.count("done") >= 4

    assert main(["campaign-report", "--store", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "dominance" in out and "response" in out and "deviation" in out

    report_path = tmp_path / "rows.csv"
    assert (
        main(
            [
                "campaign-report",
                "--store",
                str(store_path),
                "--format",
                "csv",
                "--output",
                str(report_path),
                "--filter",
                "scheme=response",
            ]
        )
        == 0
    )
    lines = report_path.read_text().strip().splitlines()
    assert len(lines) == 5  # header + one row per point for one scheme
    assert all("response" in line for line in lines[1:])


def test_cli_campaign_json_summary_and_errors(tmp_path, capsys):
    spec_path = tmp_path / "campaign.json"
    spec_path.write_text(json.dumps(campaign_dict("json-grid", axes={"seed": [0]})))
    store_path = tmp_path / "store.sqlite"
    assert (
        main(
            [
                "run-campaign",
                "--spec",
                str(spec_path),
                "--store",
                str(store_path),
                "--json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_points"] == 1 and payload["executed"] == 1
    # A missing store is a CLI error — and the read-only commands must not
    # create an empty store file as a side effect (that would mask a
    # --store typo forever).
    missing = tmp_path / "missing.sqlite"
    with pytest.raises(SystemExit):
        main(["campaign-status", "--store", str(missing)])
    assert not missing.exists()
    with pytest.raises(SystemExit):
        main(["campaign-report", "--store", str(missing)])
    assert not missing.exists()
    # A typo'd --metric is an input error listing what was recorded,
    # not an empty report.
    with pytest.raises(SystemExit):
        main(
            [
                "campaign-report",
                "--store",
                str(store_path),
                "--metric",
                "mean_pwr_typo",
            ]
        )
    assert "mean_power_percent" in capsys.readouterr().err
    # Unknown campaign selectors list what is stored.
    with pytest.raises(SystemExit):
        main(["campaign-report", "--store", str(store_path), "--campaign", "nope"])
