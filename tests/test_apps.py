"""Tests for the streaming and web application workloads."""

import pytest

from repro.apps import (
    WebConfig,
    pick_client_nodes,
    run_streaming_workload,
    run_web_workload,
    specweb_file_sizes,
)
from repro.exceptions import ConfigurationError
from repro.routing import ospf_invcap_routing
from repro.topology import Topology, build_abovenet
from repro.traffic import TrafficMatrix
from repro.units import mbps


@pytest.fixture
def star() -> Topology:
    """A small star: server ``s`` with three stub nodes behind a hub."""
    topo = Topology("star")
    topo.add_node("s")
    topo.add_node("hub")
    for name in ("c1", "c2", "c3"):
        topo.add_node(name)
    topo.add_link("s", "hub", capacity_bps=mbps(10), latency_s=0.005)
    topo.add_link("hub", "c1", capacity_bps=mbps(10), latency_s=0.005)
    topo.add_link("hub", "c2", capacity_bps=mbps(10), latency_s=0.010)
    topo.add_link("hub", "c3", capacity_bps=mbps(2), latency_s=0.005)
    return topo


# --------------------------------------------------------------------- #
# Streaming workload
# --------------------------------------------------------------------- #
def test_streaming_all_clients_play_when_capacity_ample(star):
    routing = ospf_invcap_routing(star)
    clients = ["c1", "c2", "c1"]
    result = run_streaming_workload(star, routing, "s", clients)
    assert result.playable_client_fraction == pytest.approx(1.0)
    minimum, median, maximum = result.delivery_percent_summary()
    assert minimum == median == maximum == pytest.approx(100.0)
    assert result.mean_block_latency_s > 0


def test_streaming_degrades_when_bottleneck_oversubscribed(star):
    routing = ospf_invcap_routing(star)
    # 20 clients at 600 kb/s = 12 Mb/s through the 10 Mb/s s-hub link.
    clients = ["c1", "c2"] * 10
    result = run_streaming_workload(star, routing, "s", clients)
    assert result.playable_client_fraction < 1.0
    minimum, _median, maximum = result.delivery_percent_summary()
    assert minimum < 100.0
    assert maximum <= 100.0


def test_streaming_latency_reflects_path_propagation(star):
    routing = ospf_invcap_routing(star)
    result = run_streaming_workload(star, routing, "s", ["c1", "c2"])
    latencies = result.per_client_block_latency_s
    assert latencies["client-1"] > latencies["client-0"]  # c2 is farther


def test_streaming_validation(star):
    routing = ospf_invcap_routing(star)
    with pytest.raises(ConfigurationError):
        run_streaming_workload(star, routing, "s", [])
    with pytest.raises(ConfigurationError):
        run_streaming_workload(star, routing, "s", ["s"])
    partial = ospf_invcap_routing(star, pairs=[("s", "c1")])
    with pytest.raises(ConfigurationError):
        run_streaming_workload(star, partial, "s", ["c2"])


def test_pick_client_nodes_deterministic():
    topology = build_abovenet()
    source = topology.routers()[0]
    first = pick_client_nodes(topology, source, 10, seed=3)
    second = pick_client_nodes(topology, source, 10, seed=3)
    assert first == second
    assert len(first) == 10
    assert source not in first


# --------------------------------------------------------------------- #
# Web workload
# --------------------------------------------------------------------- #
def test_specweb_file_sizes_distribution():
    sizes = specweb_file_sizes(100, seed=1)
    assert len(sizes) == 100
    assert (sizes >= 500).all()
    assert (sizes <= 2_000_000).all()
    assert sizes.mean() > 5_000
    with pytest.raises(ConfigurationError):
        specweb_file_sizes(0, seed=1)


def test_web_workload_latency_statistics(star):
    routing = ospf_invcap_routing(star)
    config = WebConfig(requests_per_client=50, seed=7)
    result = run_web_workload(star, routing, "s", ["c1", "c2"], config)
    assert result.mean_latency_s > 0
    assert result.median_latency_s <= result.p95_latency_s
    assert len(result.per_request_latency_s) == 100


def test_web_workload_longer_paths_cost_more(star):
    routing = ospf_invcap_routing(star)
    config = WebConfig(requests_per_client=50, seed=7)
    near = run_web_workload(star, routing, "s", ["c1"], config)
    far = run_web_workload(star, routing, "s", ["c2"], config)
    assert far.mean_latency_s > near.mean_latency_s
    assert far.mean_latency_increase_percent(near) > 0


def test_web_workload_background_traffic_slows_transfers(star):
    routing = ospf_invcap_routing(star)
    config = WebConfig(requests_per_client=50, seed=7)
    idle = run_web_workload(star, routing, "s", ["c1"], config)
    background = TrafficMatrix({("s", "c1"): mbps(9)})
    busy = run_web_workload(
        star, routing, "s", ["c1"], config, background_demands=background
    )
    assert busy.mean_latency_s > idle.mean_latency_s


def test_web_workload_validation(star):
    routing = ospf_invcap_routing(star)
    with pytest.raises(ConfigurationError):
        run_web_workload(star, routing, "s", [])
    with pytest.raises(ConfigurationError):
        run_web_workload(star, routing, "s", ["s"])
