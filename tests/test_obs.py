"""Tests for the unified observability layer (spans, metrics, exposure).

The load-bearing guarantees pinned here:

* tracing is off by default and costs one module-global check per span;
* a traced run emits well-formed NDJSON whose parent links form a tree
  covering build → timeline → per-interval scheme steps;
* traced and untraced runs are **bit-identical** (results and campaign
  stores compare equal after stripping wall-clock fields);
* the metrics registry is safe under concurrent writers and renders
  valid Prometheus text;
* ``GET /metrics`` answers with zero read errors while a submitted
  campaign is actively draining the store;
* phase attribution is exclusive: the build/calibrate/solve/allocate
  buckets never double-count nested spans and overhead absorbs the rest.
"""

import json
import sqlite3
import threading

import numpy as np
import pytest

from repro.campaign import CampaignSpec, CampaignStore, run_campaign
from repro.campaign.cli import campaign_command
from repro.campaign.store import STORE_SCHEMA_VERSION
from repro.experiments.runner import main as experiments_main
from repro.obs import metrics, trace
from repro.scenario.engine import run_scenario
from repro.simulator.fairness import last_kernel_stats, max_min_fair_rates
from repro.traffic.scaling import calibration_cache_stats, clear_calibration_cache

from test_service import (
    base_scenario,
    campaign_dict,
    get_json,
    post_json,
    service,
    wait_for_job,
)


# --------------------------------------------------------------------- #
# Fixtures
# --------------------------------------------------------------------- #
@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    trace.disable_tracing()
    yield
    trace.disable_tracing()


def small_scenario(name="obs-scenario", seed=0):
    spec = base_scenario()
    spec["name"] = name
    spec["traffic"]["params"]["seed"] = seed
    return spec


def strip_volatile(result_dict):
    """A result dict minus wall-clock fields (mirrors canonical_result_dict)."""
    from repro.campaign.store import canonical_result_dict

    return canonical_result_dict(result_dict)


# --------------------------------------------------------------------- #
# Spans and NDJSON sidecars
# --------------------------------------------------------------------- #
def test_tracing_disabled_by_default_and_spans_are_noops():
    assert not trace.tracing_enabled()
    span = trace.span("anything", key="value")
    assert span is trace.span("other")  # the shared no-op singleton
    with span as entered:
        entered.set(more="attrs")  # must not raise
    assert trace.current_span() is None


def test_traced_run_emits_wellformed_ndjson_span_tree(tmp_path):
    path = tmp_path / "trace.ndjson"
    trace.configure_tracing(path)
    assert trace.tracing_enabled()
    assert str(trace.trace_path()) == str(path)
    run_scenario(small_scenario())
    trace.disable_tracing()
    assert not trace.tracing_enabled()

    records = list(trace.iter_trace(path))
    assert records, "traced run emitted no spans"
    by_id = {}
    for record in records:
        # Well-formed: every record carries the span envelope.
        assert {"name", "span_id", "parent_id", "pid", "thread", "ts", "duration_s"} <= set(record)
        assert record["duration_s"] >= 0.0
        by_id[record["span_id"]] = record
    # Parent links form a tree rooted in this process's spans.
    for record in records:
        parent = record["parent_id"]
        assert parent is None or parent in by_id
    names = {record["name"] for record in records}
    assert {"scenario.build", "timeline.run", "scheme.start", "scheme.step"} <= names
    # Per-interval scheme steps: one scheme.step per (scheme, interval).
    steps = [r for r in records if r["name"] == "scheme.step"]
    schemes = {r["attrs"]["scheme"] for r in steps}
    assert schemes == {"response", "ecmp"}
    for step in steps:
        assert step["attrs"]["interval"] >= 0
        # Steps nest under the timeline.run span (directly or via a parent).
        ancestor = by_id.get(step["parent_id"])
        seen = set()
        while ancestor is not None and ancestor["span_id"] not in seen:
            seen.add(ancestor["span_id"])
            if ancestor["name"] == "timeline.run":
                break
            ancestor = by_id.get(ancestor["parent_id"])
        assert ancestor is not None and ancestor["name"] == "timeline.run"


def test_span_records_error_attribute_on_exception(tmp_path):
    path = tmp_path / "err.ndjson"
    trace.configure_tracing(path)
    with pytest.raises(ValueError):
        with trace.span("failing.op"):
            raise ValueError("boom")
    trace.disable_tracing()
    [record] = list(trace.iter_trace(path))
    assert record["name"] == "failing.op"
    assert record["attrs"]["error"] == "ValueError"


def test_traced_run_is_bit_identical_to_untraced(tmp_path):
    spec = small_scenario("obs-identity")
    baseline = run_scenario(spec).to_dict()
    trace.configure_tracing(tmp_path / "identity.ndjson")
    traced = run_scenario(spec).to_dict()
    trace.disable_tracing()
    assert strip_volatile(traced) == strip_volatile(baseline)


# --------------------------------------------------------------------- #
# Phase attribution
# --------------------------------------------------------------------- #
def test_phase_collector_attributes_exclusively():
    collector = trace.PhaseCollector()
    with trace.collect(collector):
        run_scenario(small_scenario("obs-phases"))
    phases = collector.phases(elapsed_s=10.0)
    assert set(phases) == set(trace.PHASE_NAMES)
    assert all(value >= 0.0 for value in phases.values())
    # Exclusive attribution: the buckets plus overhead equal the elapsed
    # wall-clock exactly (overhead is the remainder by construction).
    assert sum(phases.values()) == pytest.approx(10.0)
    assert phases["solve"] > 0.0  # the response plan build is solve time


def test_phase_collector_without_elapsed_omits_overhead():
    collector = trace.PhaseCollector()
    with trace.collect(collector):
        with trace.span("scenario.build"):
            pass
    phases = collector.phases()
    assert "overhead" not in phases
    assert set(phases) == set(trace.PHASE_NAMES) - {"overhead"}


def test_kernel_stats_record_iterations_and_frozen_trace():
    demands = np.array([3e8, 3e8, 3e8])
    flat_flow = np.array([0, 1, 2])
    flat_arc = np.array([0, 0, 0])
    capacity = np.array([6e8])
    collector = trace.SpanCollector()
    with trace.collect(collector):
        rates = max_min_fair_rates(demands, flat_flow, flat_arc, capacity)
    stats = last_kernel_stats()
    assert stats["iterations"] >= 1
    assert sum(stats["frozen_per_iteration"]) == len(demands)
    np.testing.assert_allclose(rates, 2e8)
    # Untraced: iterations still counted, frozen trace skipped.
    max_min_fair_rates(demands, flat_flow, flat_arc, capacity)
    stats = last_kernel_stats()
    assert stats["iterations"] >= 1
    assert "frozen_per_iteration" not in stats


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #
def test_registry_counter_gauge_histogram_roundtrip():
    registry = metrics.MetricsRegistry()
    requests = registry.counter("t_requests_total", "Requests")
    requests.inc()
    requests.inc(2.0)
    assert requests.value == 3.0
    with pytest.raises(ValueError):
        requests.inc(-1.0)
    depth = registry.gauge("t_queue_depth", "Queue depth")
    depth.set(5.0)
    depth.dec(2.0)
    assert depth.value == 3.0
    latency = registry.histogram("t_latency_seconds", "Latency", buckets=(0.1, 1.0))
    latency.observe(0.05)
    latency.observe(0.5)
    latency.observe(5.0)
    [sample] = latency.samples()
    assert sample["count"] == 3
    assert sample["buckets"]["0.1"] == 1
    assert sample["buckets"]["1"] == 2
    assert sample["buckets"]["+Inf"] == 3
    with pytest.raises(ValueError):
        registry.gauge("t_requests_total", "kind clash")
    text = registry.render_prometheus()
    assert "# TYPE t_requests_total counter" in text
    assert "t_requests_total 3" in text
    assert 't_latency_seconds_bucket{le="+Inf"} 3' in text
    assert "t_latency_seconds_count 3" in text
    snapshot = registry.snapshot()
    assert snapshot["t_requests_total"]["type"] == "counter"


def test_registry_labelled_children_render_sorted():
    registry = metrics.MetricsRegistry()
    family = registry.counter("t_routed_total", "Routed requests")
    family.labels(route="/b", method="GET").inc()
    family.labels(method="GET", route="/a").inc(2.0)
    text = registry.render_prometheus()
    assert 't_routed_total{method="GET",route="/a"} 2' in text
    assert text.index('route="/a"') < text.index('route="/b"')


def test_registry_is_thread_safe_under_concurrent_writers():
    registry = metrics.MetricsRegistry()
    counter = registry.counter("t_concurrent_total", "Concurrent increments")
    histogram = registry.histogram("t_concurrent_seconds", "Concurrent observes")
    threads = 8
    per_thread = 2000
    barrier = threading.Barrier(threads)

    def hammer(index):
        barrier.wait()
        for _ in range(per_thread):
            counter.inc()
            histogram.labels(worker=str(index % 2)).observe(0.01)

    workers = [
        threading.Thread(target=hammer, args=(index,)) for index in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert counter.value == threads * per_thread
    total = sum(sample["count"] for sample in histogram.samples())
    assert total == threads * per_thread


def test_calibration_cache_shim_counts_through_registry():
    clear_calibration_cache()
    assert calibration_cache_stats() == {"hits": 0, "misses": 0}
    spec = small_scenario("obs-calibrated")
    spec["traffic"] = {
        "name": "gravity",
        "params": {
            "num_pairs": 8,
            "num_endpoints": 5,
            "seed": 1,
            "calibrate": True,
            "levels": [0.5, 1.0],
        },
    }
    run_scenario(spec)
    first = calibration_cache_stats()
    assert first["misses"] >= 1
    run_scenario(spec)
    second = calibration_cache_stats()
    assert second["hits"] >= first["hits"] + 1
    assert second["misses"] == first["misses"]
    clear_calibration_cache()
    assert calibration_cache_stats() == {"hits": 0, "misses": 0}


# --------------------------------------------------------------------- #
# Campaign profiling and store schema
# --------------------------------------------------------------------- #
def test_profiled_campaign_persists_phases_and_stays_bit_identical(tmp_path):
    spec = CampaignSpec.from_dict(campaign_dict("obs-profile"))
    plain = tmp_path / "plain.sqlite"
    profiled = tmp_path / "profiled.sqlite"
    run_campaign(spec, store_path=plain)
    summary = run_campaign(spec, store_path=profiled, profile=True)
    assert summary.failed == 0
    with CampaignStore(profiled, read_only=True) as store:
        campaign = store.find_campaign()
        points = store.points(campaign["campaign_id"])
        assert points and all(
            set(point["phases"]) == set(trace.PHASE_NAMES) for point in points
        )
        totals = store.phase_totals(campaign["campaign_id"])
        assert totals["points"] == len(points)
        assert totals["totals"]["solve"] > 0.0
        profiled_dump = store.canonical_dump(campaign["campaign_id"])
    with CampaignStore(plain, read_only=True) as store:
        campaign = store.find_campaign()
        plain_dump = store.canonical_dump(campaign["campaign_id"])
        assert all(
            point["phases"] is None
            for point in store.points(campaign["campaign_id"])
        )
    assert profiled_dump == plain_dump


def test_v2_store_migrates_to_v3_in_place(tmp_path):
    path = tmp_path / "old.sqlite"
    spec = CampaignSpec.from_dict(campaign_dict("obs-migrate"))
    run_campaign(spec, store_path=path, max_points=1)
    # Rewind the store to schema v2: drop the profile column.
    connection = sqlite3.connect(path)
    connection.execute("ALTER TABLE points DROP COLUMN phases_json")
    connection.execute("PRAGMA user_version = 2")
    connection.close()
    # A read-only open tolerates the old version (no phase data to report).
    with CampaignStore(path, read_only=True) as store:
        campaign = store.find_campaign()
        assert store.phase_totals(campaign["campaign_id"]) == {
            "points": 0,
            "totals": {},
        }
    # A writable open migrates in place and the campaign resumes.
    summary = run_campaign(spec, store_path=path, profile=True)
    assert summary.failed == 0 and summary.remaining == 0
    connection = sqlite3.connect(path)
    version = connection.execute("PRAGMA user_version").fetchone()[0]
    connection.close()
    assert version == STORE_SCHEMA_VERSION
    with CampaignStore(path, read_only=True) as store:
        campaign = store.find_campaign()
        executed = [
            point
            for point in store.points(campaign["campaign_id"])
            if point["phases"] is not None
        ]
        assert len(executed) == summary.executed


def test_campaign_status_json_reports_throughput_and_eta(tmp_path, capsys):
    spec_path = tmp_path / "campaign.json"
    spec_path.write_text(json.dumps(campaign_dict("obs-eta")))
    store_path = tmp_path / "eta.sqlite"
    # Register without executing: throughput must be None-safe.
    campaign_command(
        "run-campaign",
        [
            "--spec", str(spec_path),
            "--store", str(store_path),
            "--max-points", "0",
        ],
    )
    capsys.readouterr()
    campaign_command(
        "campaign-status", ["--store", str(store_path), "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    [row] = payload["campaigns"]
    assert row["points_per_second"] is None
    assert row["eta_seconds"] is None
    # Execute part of the grid: ETA extrapolates from done points.
    campaign_command(
        "run-campaign",
        [
            "--spec", str(spec_path),
            "--store", str(store_path),
            "--max-points", "2",
        ],
    )
    capsys.readouterr()
    campaign_command(
        "campaign-status", ["--store", str(store_path), "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    [row] = payload["campaigns"]
    assert row["points_per_second"] > 0.0
    assert row["eta_seconds"] > 0.0
    # Finish the grid: ETA collapses to zero.
    campaign_command(
        "run-campaign", ["--spec", str(spec_path), "--store", str(store_path)]
    )
    capsys.readouterr()
    campaign_command(
        "campaign-status", ["--store", str(store_path), "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    [row] = payload["campaigns"]
    assert row["eta_seconds"] == 0.0


def test_campaign_report_timings_renders_phase_table(tmp_path, capsys):
    spec_path = tmp_path / "campaign.json"
    spec_path.write_text(json.dumps(campaign_dict("obs-timings")))
    store_path = tmp_path / "timings.sqlite"
    campaign_command(
        "run-campaign",
        ["--spec", str(spec_path), "--store", str(store_path), "--profile"],
    )
    capsys.readouterr()
    campaign_command(
        "campaign-report", ["--store", str(store_path), "--timings"]
    )
    text = capsys.readouterr().out
    for phase in trace.PHASE_NAMES:
        assert phase in text
    campaign_command(
        "campaign-report",
        ["--store", str(store_path), "--timings", "--format", "json"],
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["profiled_points"] == 4
    assert set(payload["totals_s"]) == set(trace.PHASE_NAMES)


def test_run_scenario_cli_trace_and_profile(tmp_path, capsys):
    trace_path = tmp_path / "cli.ndjson"
    code = experiments_main(
        [
            "run-scenario",
            "--topology", "geant",
            "--traffic", "uniform",
            "--set", "traffic.num_pairs=6",
            "--set", "traffic.num_endpoints=5",
            "--set", "traffic.flow_bps=1e8",
            "--set", "traffic.seed=0",
            "--power", "cisco",
            "--scheme", "response",
            "--scheme", "ecmp",
            "--profile",
            "--trace", str(trace_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "phase timings:" in out
    for phase in trace.PHASE_NAMES:
        assert phase in out
    records = list(trace.iter_trace(trace_path))
    assert {r["name"] for r in records} >= {"scenario.build", "timeline.run"}
    assert not trace.tracing_enabled()  # the CLI cleaned up after itself


# --------------------------------------------------------------------- #
# Service exposure
# --------------------------------------------------------------------- #
def scrape_metrics(server):
    import urllib.request

    with urllib.request.urlopen(server.url + "/metrics", timeout=60) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode("utf-8")


def test_metrics_endpoint_serves_prometheus_and_json(tmp_path):
    with service(tmp_path) as server:
        get_json(server, "/healthz")
        text = scrape_metrics(server)
        assert "# TYPE repro_service_requests_total counter" in text
        assert 'route="/healthz"' in text
        assert "# TYPE repro_service_request_seconds histogram" in text
        status, payload = get_json(server, "/metrics?format=json")
        assert status == 200
        families = payload["metrics"]
        assert "repro_service_requests_total" in families
        assert families["repro_service_requests_total"]["type"] == "counter"
        # The endpoint index advertises the scrape route.
        _, index = get_json(server, "/")
        assert "GET /metrics" in index["endpoints"]


def test_metrics_scrape_survives_live_campaign_drain(tmp_path):
    with service(tmp_path) as server:
        status, submitted = post_json(
            server, "/campaigns", campaign_dict("obs-drain")
        )
        assert status == 202
        campaign_id = submitted["campaign_id"]
        errors = []
        scrapes = []
        done = threading.Event()

        def scraper():
            while not done.is_set():
                try:
                    scrapes.append(scrape_metrics(server))
                except Exception as error:  # noqa: BLE001 - the assertion
                    errors.append(error)

        thread = threading.Thread(target=scraper)
        thread.start()
        try:
            final = wait_for_job(server, campaign_id)
        finally:
            done.set()
            thread.join(timeout=30)
        assert errors == []
        assert scrapes, "no scrape completed during the drain"
        assert final["counts"]["done"] == final["counts"]["total"]
        # Route labels stay template-shaped: ids never leak into labels.
        text = scrape_metrics(server)
        assert 'route="/campaigns/{id}/status"' in text
        assert campaign_id[:12] not in text
