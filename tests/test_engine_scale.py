"""Tests for the million-flow scale axis: kernel selection, sparse network
allocation, flow aggregation, calibration memoisation and the compiled
flow-set cache."""

import numpy as np
import pytest

from repro.exceptions import TrafficError
from repro.routing import Path
from repro.simulator import (
    SPARSE_CROSSOVER,
    AggregatedFlows,
    Flow,
    SimulatedNetwork,
    allocate_aggregated,
    constant_demand,
    fairness_kernel,
    select_kernel,
    set_fairness_kernel,
)
from repro.simulator import fairness as fairness_module
from repro.topology.fattree import build_fattree, hosts
from repro.traffic import (
    TrafficMatrix,
    calibrate_max_load,
    calibration_cache_stats,
    clear_calibration_cache,
)
from repro.units import mbps


@pytest.fixture(autouse=True)
def _reset_kernel():
    """Every test starts and ends on the automatic kernel choice."""
    set_fairness_kernel(None)
    yield
    set_fairness_kernel(None)


def fattree_flows(k=4, num_flows=40, seed=3):
    """Deterministic host-to-host flows on a fat-tree."""
    import random

    topology = build_fattree(k)
    endpoints = hosts(topology)
    rng = random.Random(seed)
    flows = []
    for index in range(num_flows):
        origin, destination = rng.sample(endpoints, 2)
        path = Path.of(topology.shortest_path(origin, destination))
        flows.append(
            Flow(
                f"f{index}",
                origin,
                destination,
                constant_demand(rng.uniform(mbps(1), mbps(800))),
                path=path,
            )
        )
    return topology, flows


# --------------------------------------------------------------------- #
# Kernel selection knob
# --------------------------------------------------------------------- #


def test_select_kernel_crosses_over_on_problem_size():
    assert select_kernel(10, 10) == "dense"
    assert select_kernel(SPARSE_CROSSOVER, 1) == "dense"  # product == crossover
    assert select_kernel(SPARSE_CROSSOVER, 2) == "sparse"
    assert select_kernel(1_000_000, 50_000) == "sparse"


def test_set_fairness_kernel_overrides_and_restores():
    assert fairness_kernel() == "auto"
    previous = set_fairness_kernel("sparse")
    assert previous is None  # no override was active
    assert fairness_kernel() == "sparse"
    assert select_kernel(1, 1) == "sparse"  # override beats the crossover
    assert set_fairness_kernel("dense") == "sparse"
    assert select_kernel(10**9, 10**9) == "dense"
    set_fairness_kernel(None)
    assert fairness_kernel() == "auto"
    with pytest.raises(ValueError):
        set_fairness_kernel("csr")


def test_kernel_env_var_respected(monkeypatch):
    monkeypatch.setenv(fairness_module.KERNEL_ENV_VAR, "sparse")
    assert fairness_kernel() == "sparse"
    assert select_kernel(1, 1) == "sparse"
    # The process-wide override still beats the environment.
    set_fairness_kernel("dense")
    assert fairness_kernel() == "dense"


def test_sparse_request_without_scipy_raises(monkeypatch):
    monkeypatch.setattr(fairness_module, "_scipy_sparse", None)
    set_fairness_kernel("sparse")
    with pytest.raises(RuntimeError, match="scipy"):
        select_kernel(10, 10)
    # Automatic selection silently stays dense without scipy.
    set_fairness_kernel(None)
    assert select_kernel(10**9, 10**9) == "dense"


# --------------------------------------------------------------------- #
# Network-level sparse allocation: bit-identical to dense
# --------------------------------------------------------------------- #


def test_network_allocation_identical_under_sparse_kernel():
    topology, flows = fattree_flows()
    dense_network = SimulatedNetwork(topology)
    set_fairness_kernel("dense")
    dense_network.allocate_rates(flows, now_s=0.0)
    dense_rates = np.array([flow.rate_bps for flow in flows])
    dense_batch = dense_network.allocate_rates_batch(flows, [0.0, 900.0])

    sparse_network = SimulatedNetwork(build_fattree(4))
    set_fairness_kernel("sparse")
    sparse_network.allocate_rates(flows, now_s=0.0)
    sparse_rates = np.array([flow.rate_bps for flow in flows])
    sparse_batch = sparse_network.allocate_rates_batch(flows, [0.0, 900.0])

    assert np.array_equal(dense_rates, sparse_rates)
    assert np.array_equal(dense_batch, sparse_batch)


# --------------------------------------------------------------------- #
# Flow aggregation: exact equivalence with the per-flow engine
# --------------------------------------------------------------------- #


def test_allocate_aggregated_matches_per_flow_allocation():
    topology, flows = fattree_flows(num_flows=60)
    network = SimulatedNetwork(topology)
    set_fairness_kernel("dense")
    network.allocate_rates(flows, now_s=0.0)
    per_flow = np.array([flow.rate_bps for flow in flows])

    table = AggregatedFlows.from_flows(flows, now_s=0.0)
    assert table.num_groups < table.num_flows  # shared paths actually group
    aggregated = allocate_aggregated(SimulatedNetwork(build_fattree(4)), table)
    assert np.array_equal(per_flow, aggregated)


def test_allocate_aggregated_group_sums_match_summed_per_flow_rates():
    # Aggregate-then-allocate == allocate-then-sum: the per-group totals of
    # the aggregated allocation equal the summed per-flow dense rates.
    topology, flows = fattree_flows(num_flows=60)
    network = SimulatedNetwork(topology)
    set_fairness_kernel("dense")
    network.allocate_rates(flows, now_s=0.0)
    table = AggregatedFlows.from_flows(flows, now_s=0.0)
    aggregated = allocate_aggregated(SimulatedNetwork(build_fattree(4)), table)
    per_flow_sums = np.zeros(table.num_groups)
    aggregated_sums = np.zeros(table.num_groups)
    for index, flow in enumerate(flows):
        per_flow_sums[table.flow_group[index]] += flow.rate_bps
        aggregated_sums[table.flow_group[index]] += aggregated[index]
    assert np.array_equal(per_flow_sums, aggregated_sums)


def test_allocate_aggregated_tracks_link_state():
    topology, flows = fattree_flows(num_flows=40)
    network = SimulatedNetwork(topology)
    table = AggregatedFlows.from_flows(flows, now_s=0.0)
    # Sleep everything except the arcs the flows actually use, then kill
    # one used link: flows over it get zero, the rest stay max-min fair.
    used = {arc for flow in flows for arc in flow.path.link_keys()}
    victim = sorted(used)[0]
    network.fail_link(*victim)
    set_fairness_kernel("dense")
    network.allocate_rates(flows, now_s=0.0)
    per_flow = np.array([flow.rate_bps for flow in flows])
    aggregated = allocate_aggregated(network, table)
    assert np.array_equal(per_flow, aggregated)
    crossing = [
        index
        for index, flow in enumerate(flows)
        if victim in set(flow.path.link_keys())
    ]
    assert crossing and all(aggregated[index] == 0.0 for index in crossing)


def test_aggregated_flows_validation():
    from repro.exceptions import SimulationError

    path = Path.of(["a", "b"])
    with pytest.raises(SimulationError):
        AggregatedFlows.from_arrays(
            (path,), np.array([1], dtype=np.int64), np.array([mbps(1)])
        )
    with pytest.raises(SimulationError):
        AggregatedFlows.from_arrays(
            (path,), np.array([0, 0], dtype=np.int64), np.array([mbps(1)])
        )


# --------------------------------------------------------------------- #
# Calibration memoisation
# --------------------------------------------------------------------- #


def triangle_topology():
    from repro.topology.base import Topology

    topo = Topology(name="triangle")
    for name in ("a", "b", "c"):
        topo.add_node(name, kind="router")
    topo.add_link("a", "b", capacity_bps=mbps(100))
    topo.add_link("b", "c", capacity_bps=mbps(100))
    topo.add_link("a", "c", capacity_bps=mbps(100))
    return topo


def test_calibration_memo_hit_is_bit_identical():
    clear_calibration_cache()
    topology = triangle_topology()
    matrix = TrafficMatrix({("a", "c"): mbps(10), ("b", "c"): mbps(5)})
    first = calibrate_max_load(topology, matrix)
    stats = calibration_cache_stats()
    assert stats == {"hits": 0, "misses": 1}
    second = calibrate_max_load(topology, matrix)
    assert second == first  # bit-identical, it is the same float object
    assert calibration_cache_stats() == {"hits": 1, "misses": 1}
    # A different matrix is a different key, not a stale hit.
    calibrate_max_load(topology, matrix.scaled(0.5))
    assert calibration_cache_stats() == {"hits": 1, "misses": 2}


def test_calibration_memo_matches_uncached_recomputation():
    clear_calibration_cache()
    topology = triangle_topology()
    matrix = TrafficMatrix({("a", "c"): mbps(10), ("b", "c"): mbps(5)})
    cached = calibrate_max_load(topology, matrix)
    clear_calibration_cache()
    recomputed = calibrate_max_load(topology, matrix)
    assert cached == recomputed


def test_calibration_custom_oracle_never_cached():
    clear_calibration_cache()
    topology = triangle_topology()
    matrix = TrafficMatrix({("a", "c"): mbps(10)})
    calls = []

    def oracle(topo, demands):
        calls.append(demands.total_bps)
        return demands.total_bps <= mbps(50)

    first = calibrate_max_load(topology, matrix, oracle=oracle)
    count = len(calls)
    second = calibrate_max_load(topology, matrix, oracle=oracle)
    assert len(calls) == 2 * count  # re-evaluated, not served from the memo
    assert first == second
    assert calibration_cache_stats() == {"hits": 0, "misses": 0}
    with pytest.raises(TrafficError):
        calibrate_max_load(topology, TrafficMatrix({}))


# --------------------------------------------------------------------- #
# Compiled flow-set cache (allocate_rates regression)
# --------------------------------------------------------------------- #


def test_allocate_rates_reuses_compiled_flow_set(monkeypatch):
    topology, flows = fattree_flows(num_flows=20)
    network = SimulatedNetwork(topology)
    usable_calls = []
    compile_calls = []
    original_usable = network.link_usable_vector
    original_compile = network.arc_table.compile_path

    def counting_usable():
        usable_calls.append(1)
        return original_usable()

    def counting_compile(path):
        compile_calls.append(1)
        return original_compile(path)

    monkeypatch.setattr(network, "link_usable_vector", counting_usable)
    monkeypatch.setattr(network.arc_table, "compile_path", counting_compile)

    network.allocate_rates(flows, now_s=0.0)
    baseline_usable = len(usable_calls)
    baseline_compile = len(compile_calls)
    assert baseline_usable >= 1 and baseline_compile >= 1

    # Same flows, same link state: the compiled set is reused untouched.
    network.allocate_rates(flows, now_s=10.0)
    network.allocate_rates_batch(flows, [0.0, 900.0])
    assert len(usable_calls) == baseline_usable
    assert len(compile_calls) == baseline_compile


def test_compiled_flow_set_invalidated_on_link_state_change():
    topology, flows = fattree_flows(num_flows=20)
    network = SimulatedNetwork(topology)
    network.allocate_rates(flows, now_s=0.0)
    before = np.array([flow.rate_bps for flow in flows])
    victim = sorted({arc for flow in flows for arc in flow.path.link_keys()})[0]
    network.fail_link(*victim)
    network.allocate_rates(flows, now_s=0.0)
    after = np.array([flow.rate_bps for flow in flows])
    assert not np.array_equal(before, after)
    crossing = [
        index
        for index, flow in enumerate(flows)
        if victim in set(flow.path.link_keys())
    ]
    assert crossing and all(after[index] == 0.0 for index in crossing)
    # Repairing restores the original allocation bit for bit.
    network.repair_link(*victim)
    network.allocate_rates(flows, now_s=0.0)
    assert np.array_equal(
        before, np.array([flow.rate_bps for flow in flows])
    )


def test_compiled_flow_set_invalidated_on_path_reassignment():
    topology, flows = fattree_flows(num_flows=10)
    network = SimulatedNetwork(topology)
    network.allocate_rates(flows, now_s=0.0)
    moved = flows[0]
    detour = Path.of(topology.shortest_path(moved.origin, moved.destination))
    moved.path = detour  # a fresh Path object: the cache key must change
    network.allocate_rates(flows, now_s=0.0)
    # The rewritten path is what the arc loads reflect now.
    loads = sum(
        network.arc_load(src, dst) for (src, dst) in detour.arc_keys()
    )
    assert loads > 0.0
