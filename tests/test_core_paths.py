"""Tests for the off-line REsPoNse path computations (Section 4)."""

import pytest

from repro.core import (
    AlwaysOnConfig,
    OnDemandConfig,
    ResponseConfig,
    ResponsePlan,
    build_response_plan,
    compute_always_on,
    compute_failover,
    compute_on_demand,
    most_stressed_links,
    stress_factors,
    stressed_links_for_routing,
    survives_single_failure,
    vulnerable_pairs,
)
from repro.exceptions import ConfigurationError
from repro.power import full_power
from repro.routing import RoutingTable, ospf_invcap_routing
from repro.traffic import TrafficMatrix
from repro.units import mbps

PAIRS = [("A", "K"), ("C", "K")]


@pytest.fixture
def click(click_topology):
    return click_topology


@pytest.fixture
def always_on(click, cisco_model):
    return compute_always_on(click, cisco_model, pairs=PAIRS)


# --------------------------------------------------------------------- #
# Stress factors
# --------------------------------------------------------------------- #
def test_stress_factors_count_flows(click, always_on):
    factors = stress_factors(click, always_on.routing, pairs=PAIRS)
    # Both always-on paths share E-H and H-K: those links carry 2 flows.
    shared = factors[("E", "H")]
    assert shared == max(factors.values())
    assert factors[("D", "G")] == 0.0


def test_most_stressed_links_fraction(click, always_on):
    factors = stress_factors(click, always_on.routing, pairs=PAIRS)
    top = most_stressed_links(factors, exclude_fraction=0.2)
    assert 1 <= len(top) <= 3
    assert top <= {key for key, value in factors.items() if value > 0}
    assert most_stressed_links(factors, exclude_fraction=0.0) == set()
    with pytest.raises(ConfigurationError):
        most_stressed_links(factors, exclude_fraction=1.5)


def test_stressed_links_for_routing_wrapper(click, always_on):
    top = stressed_links_for_routing(click, always_on.routing, 0.2, pairs=PAIRS)
    assert isinstance(top, set)


# --------------------------------------------------------------------- #
# Always-on paths
# --------------------------------------------------------------------- #
def test_always_on_aggregates_on_middle_path(click, cisco_model, always_on):
    # The minimal-power connectivity for A/C -> K is the shared E-H-K path.
    assert always_on.routing.path("A", "K").nodes == ("A", "E", "H", "K")
    assert always_on.routing.path("C", "K").nodes == ("C", "E", "H", "K")
    assert always_on.power_w < full_power(click, cisco_model).total_w


def test_always_on_latency_bound_variant(click, cisco_model):
    config = AlwaysOnConfig(latency_beta=0.0)
    solution = compute_always_on(click, cisco_model, pairs=PAIRS, config=config)
    ospf = ospf_invcap_routing(click, pairs=PAIRS)
    for pair in PAIRS:
        assert solution.routing.path(*pair).latency(click) <= ospf.path(*pair).latency(
            click
        ) * 1.0 + 1e-9


def test_always_on_with_offpeak_matrix(click, cisco_model):
    offpeak = TrafficMatrix({("A", "K"): mbps(2)})
    solution = compute_always_on(click, cisco_model, pairs=PAIRS, offpeak_matrix=offpeak)
    # The pair missing from the estimate still gets a path (epsilon fill-in).
    assert solution.routing.has_path("C", "K")


def test_always_on_greedy_method(click, cisco_model):
    config = AlwaysOnConfig(method="greedy")
    solution = compute_always_on(click, cisco_model, pairs=PAIRS, config=config)
    assert solution.routing.has_path("A", "K")
    assert solution.solver == "always-on-greedy"


def test_always_on_config_validation():
    with pytest.raises(ConfigurationError):
        AlwaysOnConfig(method="annealing")
    with pytest.raises(ConfigurationError):
        AlwaysOnConfig(latency_beta=-0.5)


# --------------------------------------------------------------------- #
# On-demand paths
# --------------------------------------------------------------------- #
def test_on_demand_stress_avoids_always_on_bottleneck(click, cisco_model, always_on):
    tables = compute_on_demand(
        click,
        cisco_model,
        always_on,
        pairs=PAIRS,
        config=OnDemandConfig(method="stress", stress_exclude_fraction=0.3),
    )
    assert len(tables) == 1
    for pair in PAIRS:
        on_demand_path = tables[0].path(*pair)
        # The on-demand path avoids the stressed middle link E-H.
        assert ("E", "H") not in set(on_demand_path.link_keys())


def test_on_demand_ospf_variant(click, cisco_model, always_on):
    tables = compute_on_demand(
        click, cisco_model, always_on, pairs=PAIRS, config=OnDemandConfig(method="ospf")
    )
    ospf = ospf_invcap_routing(click, pairs=PAIRS)
    for pair in PAIRS:
        assert tables[0].path(*pair).nodes == ospf.path(*pair).nodes


def test_on_demand_peak_requires_matrix(click, cisco_model, always_on):
    with pytest.raises(ConfigurationError):
        compute_on_demand(
            click, cisco_model, always_on, pairs=PAIRS, config=OnDemandConfig(method="peak")
        )
    peak = TrafficMatrix({pair: mbps(8) for pair in PAIRS})
    tables = compute_on_demand(
        click,
        cisco_model,
        always_on,
        pairs=PAIRS,
        peak_matrix=peak,
        config=OnDemandConfig(method="peak"),
    )
    assert tables[0].has_path("A", "K")


def test_on_demand_heuristic_variant(click, cisco_model, always_on):
    peak = TrafficMatrix({pair: mbps(8) for pair in PAIRS})
    tables = compute_on_demand(
        click,
        cisco_model,
        always_on,
        pairs=PAIRS,
        peak_matrix=peak,
        config=OnDemandConfig(method="heuristic"),
    )
    assert len(tables[0]) == len(PAIRS)


def test_on_demand_multiple_tables(click, cisco_model, always_on):
    tables = compute_on_demand(
        click,
        cisco_model,
        always_on,
        pairs=PAIRS,
        config=OnDemandConfig(method="stress", num_tables=2),
    )
    assert len(tables) == 2


def test_on_demand_config_validation():
    with pytest.raises(ConfigurationError):
        OnDemandConfig(method="magic")
    with pytest.raises(ConfigurationError):
        OnDemandConfig(num_tables=0)
    with pytest.raises(ConfigurationError):
        OnDemandConfig(stress_exclude_fraction=2.0)


# --------------------------------------------------------------------- #
# Failover paths
# --------------------------------------------------------------------- #
def test_failover_is_disjoint_when_possible(click, cisco_model, always_on):
    on_demand = compute_on_demand(click, cisco_model, always_on, pairs=PAIRS)
    failover = compute_failover(click, [always_on.routing, *on_demand], pairs=PAIRS)
    for pair in PAIRS:
        primary_links = set(always_on.routing.path(*pair).link_keys())
        failover_links = set(failover.path(*pair).link_keys())
        # Disjoint from the always-on path except possibly the first hop.
        assert ("E", "H") not in failover_links or primary_links != failover_links


def test_single_failure_protection(click, cisco_model, always_on):
    on_demand = compute_on_demand(click, cisco_model, always_on, pairs=PAIRS)
    failover = compute_failover(click, [always_on.routing, *on_demand], pairs=PAIRS)
    tables = [always_on.routing, *on_demand, failover]
    assert vulnerable_pairs(click, tables, pairs=PAIRS) == []
    assert survives_single_failure(tables, ("A", "K"), ("E", "H"))


def test_failover_default_pairs_from_tables(click, always_on):
    failover = compute_failover(click, [always_on.routing])
    assert set(failover.pairs()) == set(PAIRS)


# --------------------------------------------------------------------- #
# ResponsePlan and build_response_plan
# --------------------------------------------------------------------- #
def test_build_response_plan_end_to_end(click, cisco_model):
    plan = build_response_plan(
        click, cisco_model, pairs=PAIRS, config=ResponseConfig(num_paths=3)
    )
    assert plan.num_paths == 3
    assert set(plan.pairs()) == set(PAIRS)
    assert plan.failover is not None
    assert plan.summary()["pairs"] == 2
    paths = plan.paths_for("A", "K")
    assert 2 <= len(paths) <= 3
    counts = plan.table_count_per_pair()
    assert all(count >= 2 for count in counts.values())


def test_build_response_plan_variants(click, cisco_model):
    for variant in ("response", "response-lat", "response-ospf", "response-heuristic"):
        plan = build_response_plan(click, cisco_model, pairs=PAIRS, variant=variant)
        assert plan.variant == variant
    with pytest.raises(ConfigurationError):
        ResponseConfig.for_variant("response-quantum")
    with pytest.raises(ConfigurationError):
        build_response_plan(
            click, cisco_model, pairs=PAIRS, config=ResponseConfig(), variant="response"
        )


def test_response_config_validation():
    with pytest.raises(ConfigurationError):
        ResponseConfig(num_paths=1)
    config = ResponseConfig(num_paths=5)
    assert config.num_on_demand_tables == 3


def test_plan_from_tables(click, cisco_model):
    always_on_table = RoutingTable({("A", "K"): ["A", "E", "H", "K"]})
    on_demand_table = RoutingTable({("A", "K"): ["A", "D", "G", "K"]})
    plan = ResponsePlan.from_tables(
        click, cisco_model, always_on_table, [on_demand_table]
    )
    assert plan.num_paths == 2
    assert plan.always_on.active_nodes == {"A", "E", "H", "K"}
    assert plan.failover is None
