"""Tests for traffic matrices and pair selection."""

import pytest

from repro.exceptions import TrafficError
from repro.traffic import (
    TrafficMatrix,
    all_pairs,
    select_pairs_among_subset,
    select_random_pairs,
)


def test_basic_accessors():
    matrix = TrafficMatrix({("a", "b"): 10.0, ("b", "a"): 0.0})
    assert matrix.demand("a", "b") == 10.0
    assert matrix.demand("b", "a") == 0.0
    assert matrix.demand("a", "c") == 0.0
    assert matrix[("a", "b")] == 10.0
    assert ("a", "b") in matrix
    assert len(matrix) == 2
    assert matrix.total_bps == 10.0
    assert matrix.max_demand_bps == 10.0
    assert matrix.nonzero_pairs() == [("a", "b")]
    assert matrix.origins() == ["a", "b"]
    assert matrix.nodes() == ["a", "b"]


def test_rejects_negative_and_self_demands():
    with pytest.raises(TrafficError):
        TrafficMatrix({("a", "b"): -1.0})
    with pytest.raises(TrafficError):
        TrafficMatrix({("a", "a"): 5.0})


def test_uniform_epsilon_zero_constructors():
    pairs = [("a", "b"), ("b", "c")]
    uniform = TrafficMatrix.uniform(pairs, 7.0)
    assert uniform.total_bps == 14.0
    epsilon = TrafficMatrix.epsilon(pairs)
    assert epsilon.total_bps == pytest.approx(2.0)
    assert len(TrafficMatrix.zero()) == 0


def test_scaled_preserves_proportions():
    matrix = TrafficMatrix({("a", "b"): 10.0, ("a", "c"): 30.0})
    scaled = matrix.scaled(2.5)
    assert scaled.demand("a", "b") == pytest.approx(25.0)
    assert scaled.demand("a", "c") == pytest.approx(75.0)
    assert scaled.total_bps == pytest.approx(2.5 * matrix.total_bps)
    with pytest.raises(TrafficError):
        matrix.scaled(-1.0)


def test_with_demand_and_restrict_and_merge():
    matrix = TrafficMatrix({("a", "b"): 10.0})
    updated = matrix.with_demand("a", "c", 5.0)
    assert updated.demand("a", "c") == 5.0
    assert matrix.demand("a", "c") == 0.0  # original unchanged
    restricted = updated.restricted_to([("a", "b")])
    assert len(restricted) == 1
    merged = matrix.merged_with(TrafficMatrix({("a", "b"): 1.0, ("b", "a"): 2.0}))
    assert merged.demand("a", "b") == 11.0
    assert merged.demand("b", "a") == 2.0


def test_equality_and_as_dict():
    first = TrafficMatrix({("a", "b"): 1.0})
    second = TrafficMatrix({("a", "b"): 1.0})
    assert first == second
    assert first.as_dict() == {("a", "b"): 1.0}
    assert first != TrafficMatrix({("a", "b"): 2.0})


def test_all_pairs_counts():
    pairs = all_pairs(["a", "b", "c"])
    assert len(pairs) == 6
    assert ("a", "a") not in pairs


def test_select_random_pairs_deterministic_and_bounded():
    nodes = [f"n{i}" for i in range(8)]
    first = select_random_pairs(nodes, 10, seed=1)
    second = select_random_pairs(nodes, 10, seed=1)
    assert first == second
    assert len(first) == 10
    assert len(set(first)) == 10
    everything = select_random_pairs(nodes, 10_000, seed=1)
    assert len(everything) == len(all_pairs(nodes))
    with pytest.raises(TrafficError):
        select_random_pairs(nodes, -1, seed=1)


def test_select_pairs_among_subset_restricts_endpoints():
    nodes = [f"n{i}" for i in range(20)]
    pairs = select_pairs_among_subset(nodes, num_endpoints=5, num_pairs=15, seed=3)
    endpoints = {node for pair in pairs for node in pair}
    assert len(endpoints) <= 5
    assert len(pairs) == 15
    with pytest.raises(TrafficError):
        select_pairs_among_subset(nodes, num_endpoints=1, num_pairs=5)
