"""Tests for the evaluation-topology builders."""

import pytest

from repro.exceptions import TopologyError
from repro.topology import (
    build_abovenet,
    build_example,
    build_fattree,
    build_genuity,
    build_pop_access,
    build_rocketfuel,
    core_routers,
    core_switches,
    edge_switches,
    example_paths,
    geant_pop_names,
    hosts,
    metro_routers,
    random_connected_topology,
    rocketfuel_capacity_for_degree,
    waxman_topology,
)
from repro.topology.fattree import pod_of
from repro.topology.rocketfuel import (
    HIGH_DEGREE_CAPACITY_BPS,
    HIGH_DEGREE_THRESHOLD,
    LOW_DEGREE_CAPACITY_BPS,
)
from repro.units import gbps, mbps


# --------------------------------------------------------------------- #
# Fat-tree
# --------------------------------------------------------------------- #
def test_fattree_k4_element_counts(fattree4):
    assert len(core_switches(fattree4)) == 4
    assert len(fattree4.nodes_at_level("aggregation")) == 8
    assert len(edge_switches(fattree4)) == 8
    assert len(hosts(fattree4)) == 16
    # 16 host links + 16 edge-agg + 16 agg-core.
    assert fattree4.num_links == 48
    assert fattree4.is_connected()


def test_fattree_k6_scales():
    topo = build_fattree(6, with_hosts=False)
    assert len(core_switches(topo)) == 9
    assert len(topo.nodes_at_level("aggregation")) == 18
    assert len(edge_switches(topo)) == 18
    assert len(hosts(topo)) == 0


def test_fattree_rejects_odd_or_non_positive_arity():
    with pytest.raises(TopologyError):
        build_fattree(3)
    with pytest.raises(TopologyError):
        build_fattree(0)


def test_fattree_switch_degree_is_k(fattree4):
    for switch in edge_switches(fattree4) + fattree4.nodes_at_level("aggregation"):
        assert fattree4.degree(switch) == 4
    for switch in core_switches(fattree4):
        assert fattree4.degree(switch) == 4


def test_fattree_hosts_always_powered(fattree4):
    for host in hosts(fattree4):
        assert fattree4.node(host).always_powered
        assert fattree4.node(host).kind == "host"


def test_pod_of_parses_names():
    assert pod_of("agg2_1") == 2
    assert pod_of("edge0_1") == 0
    assert pod_of("host3_1_0") == 3
    with pytest.raises(TopologyError):
        pod_of("core5")


# --------------------------------------------------------------------- #
# GÉANT
# --------------------------------------------------------------------- #
def test_geant_has_23_pops(geant):
    assert geant.num_nodes == 23
    assert set(geant.nodes()) == set(geant_pop_names())
    assert geant.is_connected()


def test_geant_capacity_hierarchy(geant):
    capacities = {link.capacity_bps for link in geant.links()}
    assert gbps(10) in capacities
    assert gbps(2.5) in capacities
    assert mbps(155) in capacities


def test_geant_latencies_follow_distance(geant):
    # The transatlantic link must be far slower than an intra-European one.
    assert geant.link("UK", "NY").latency_s > 5 * geant.link("DE", "FR").latency_s
    for link in geant.links():
        assert link.latency_s > 0


# --------------------------------------------------------------------- #
# Rocketfuel-like topologies
# --------------------------------------------------------------------- #
def test_abovenet_and_genuity_sizes():
    abovenet = build_abovenet()
    genuity = build_genuity()
    assert abovenet.num_nodes == 22
    assert abovenet.num_links == 42
    assert genuity.num_nodes == 42
    assert genuity.num_links == 110
    assert abovenet.is_connected()
    assert genuity.is_connected()


def test_rocketfuel_generation_is_deterministic():
    first = build_abovenet(seed=7)
    second = build_abovenet(seed=7)
    assert sorted(first.link_keys()) == sorted(second.link_keys())


def test_rocketfuel_capacity_rule_applied():
    topo = build_genuity()
    for link in topo.links():
        low_degree = (
            topo.degree(link.u) < HIGH_DEGREE_THRESHOLD
            and topo.degree(link.v) < HIGH_DEGREE_THRESHOLD
        )
        expected = LOW_DEGREE_CAPACITY_BPS if low_degree else HIGH_DEGREE_CAPACITY_BPS
        assert link.capacity_bps == expected


def test_rocketfuel_capacity_for_degree_helper():
    assert rocketfuel_capacity_for_degree(2, 3) == LOW_DEGREE_CAPACITY_BPS
    assert rocketfuel_capacity_for_degree(8, 2) == HIGH_DEGREE_CAPACITY_BPS


def test_custom_rocketfuel_validation():
    with pytest.raises(TopologyError):
        build_rocketfuel("tiny", num_pops=2, num_links=1)
    with pytest.raises(TopologyError):
        build_rocketfuel("sparse", num_pops=10, num_links=5)
    topo = build_rocketfuel("custom", num_pops=12, num_links=20, seed=3)
    assert topo.num_nodes == 12
    assert topo.num_links == 20
    assert topo.is_connected()


# --------------------------------------------------------------------- #
# PoP-access hierarchy
# --------------------------------------------------------------------- #
def test_pop_access_structure():
    topo = build_pop_access(num_core=4, num_backbone=6, num_metro=10)
    assert len(core_routers(topo)) == 4
    assert len(topo.nodes_at_level("backbone")) == 6
    assert len(metro_routers(topo)) == 10
    assert topo.is_connected()
    # Core full mesh.
    for i in range(4):
        for j in range(i + 1, 4):
            assert topo.has_link(f"core{i}", f"core{j}")
    # Metro routers are dual-homed.
    for metro in metro_routers(topo):
        assert topo.degree(metro) == 2


def test_pop_access_rejects_degenerate_sizes():
    with pytest.raises(TopologyError):
        build_pop_access(num_core=1)
    with pytest.raises(TopologyError):
        build_pop_access(num_backbone=1)
    with pytest.raises(TopologyError):
        build_pop_access(num_metro=0)


# --------------------------------------------------------------------- #
# Figure 3 example
# --------------------------------------------------------------------- #
def test_example_topology_with_and_without_b():
    full = build_example(include_b=True)
    click = build_example(include_b=False)
    assert full.num_nodes == 10
    assert click.num_nodes == 9
    assert full.has_link("B", "E")
    assert not click.has_node("B")
    assert click.is_connected()


def test_example_paths_are_valid(click_topology):
    paths = example_paths()
    for table in paths.values():
        for nodes in table.values():
            assert click_topology.validate_path(nodes)
    # The always-on path goes through the middle link E-H.
    assert paths["always_on"][("A", "K")] == ["A", "E", "H", "K"]
    assert paths["on_demand"][("C", "K")] == ["C", "F", "J", "K"]


# --------------------------------------------------------------------- #
# Random generators
# --------------------------------------------------------------------- #
def test_random_connected_topology_counts_and_connectivity():
    topo = random_connected_topology(num_nodes=12, num_links=18, seed=5)
    assert topo.num_nodes == 12
    assert topo.num_links == 18
    assert topo.is_connected()


def test_random_connected_topology_rejects_bad_counts():
    with pytest.raises(TopologyError):
        random_connected_topology(num_nodes=5, num_links=3)
    with pytest.raises(TopologyError):
        random_connected_topology(num_nodes=1, num_links=0)


def test_waxman_topology_connected():
    topo = waxman_topology(num_nodes=20, seed=11)
    assert topo.num_nodes == 20
    assert topo.is_connected()
