"""reprolint: golden fixture tests, engine semantics, CLI and baseline.

Three layers:

* **Fixture goldens** — every file in ``tests/lintkit_fixtures/`` declares
  a virtual location (``# lint-as:``) plus the exact findings it expects
  (``# expect: REPxxx`` / ``# expect-suppressed: REPxxx`` trailing
  markers).  The harness asserts the finding set matches *exactly*, so a
  fixture fails both when its rule stops firing (rule deleted/broken) and
  when a rule over-fires (false positive on the negative sections).
* **Engine semantics** — suppression placement, unused-allow (REP000),
  parse errors (REP999), docstring immunity, baseline round-trips.
* **Meta gates** — the repo's own ``src/`` lints clean, and the committed
  baseline stays empty for ``simulator/`` and ``scenario/``.
"""

import json
import re
from pathlib import Path

import pytest

from repro.lintkit import cli
from repro.lintkit.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lintkit.engine import (
    PARSE_ERROR_RULE,
    UNUSED_ALLOW_RULE,
    lint_source,
)
from repro.lintkit.rules import ALL_RULES, rules_by_id

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_DIR = Path(__file__).resolve().parent / "lintkit_fixtures"

LINT_AS_RE = re.compile(r"#\s*lint-as:\s*(\S+)")
EXPECT_RE = re.compile(r"#\s*expect(-suppressed)?:\s*([A-Z0-9,\s]+?)\s*$")

#: A minimal REP202 violation used by the CLI/baseline tests below.
VIOLATION = (
    "from repro.campaign.store import CampaignStore\n"
    "\n"
    "\n"
    "def open_store(path):\n"
    "    return CampaignStore(path)\n"
)


def load_fixture(path):
    """Parse one fixture into (source, virtual path, expected finding sets)."""
    source = path.read_text(encoding="utf-8")
    match = LINT_AS_RE.search(source)
    assert match is not None, f"{path.name} is missing its '# lint-as:' header"
    expected_active = set()
    expected_suppressed = set()
    for lineno, line in enumerate(source.splitlines(), 1):
        marker = EXPECT_RE.search(line)
        if marker is None:
            continue
        rule_ids = [part.strip() for part in marker.group(2).split(",") if part.strip()]
        bucket = expected_suppressed if marker.group(1) else expected_active
        for rule_id in rule_ids:
            bucket.add((lineno, rule_id))
    return source, match.group(1), expected_active, expected_suppressed


FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))


# --------------------------------------------------------------------- #
# Fixture goldens
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda path: path.stem)
def test_fixture_golden(fixture):
    source, rel_path, expected_active, expected_suppressed = load_fixture(fixture)
    findings = lint_source(source, rel_path, ALL_RULES)
    active = {(f.line, f.rule) for f in findings if f.active}
    suppressed = {(f.line, f.rule) for f in findings if f.suppressed}
    assert active == expected_active, fixture.name
    assert suppressed == expected_suppressed, fixture.name


def test_every_rule_has_positive_and_suppressed_coverage():
    """Deleting any rule (or its suppression path) must break a fixture."""
    covered_active = set()
    covered_suppressed = set()
    for fixture in FIXTURES:
        _, _, active, suppressed = load_fixture(fixture)
        covered_active |= {rule for _, rule in active}
        covered_suppressed |= {rule for _, rule in suppressed}
    rule_ids = set(rules_by_id())
    assert rule_ids <= covered_active, rule_ids - covered_active
    assert rule_ids <= covered_suppressed, rule_ids - covered_suppressed


def test_fixture_scope_negatives_stay_clean():
    """Path-scoped rules must not fire outside their packages."""
    for name in ("scope_negative_orchestration.py", "rep103_scope_negative.py"):
        source, rel_path, active, suppressed = load_fixture(FIXTURE_DIR / name)
        assert not active and not suppressed  # the fixture declares nothing
        assert lint_source(source, rel_path, ALL_RULES) == []


# --------------------------------------------------------------------- #
# Engine semantics
# --------------------------------------------------------------------- #
def test_same_line_suppression():
    source = "import time\n\nt = time.time()  # repro: allow[REP101] boot stamp\n"
    findings = lint_source(source, "src/repro/simulator/boot.py", ALL_RULES)
    assert [f.rule for f in findings] == ["REP101"]
    assert findings[0].suppressed and not findings[0].active


def test_unused_allow_is_rep000():
    source = "# repro: allow[REP101] stale reason\nx = 1\n"
    findings = lint_source(source, "src/repro/simulator/stale.py", ALL_RULES)
    assert [f.rule for f in findings] == [UNUSED_ALLOW_RULE]
    assert "suppresses nothing" in findings[0].message
    assert findings[0].active


def test_unknown_rule_id_in_allow_is_rep000():
    source = "# repro: allow[REP998] no such rule\nx = 1\n"
    findings = lint_source(source, "src/repro/simulator/unknown.py", ALL_RULES)
    assert [f.rule for f in findings] == [UNUSED_ALLOW_RULE]
    assert "unknown rule" in findings[0].message


def test_docstring_mention_does_not_suppress():
    source = (
        '"""Docs quoting the syntax: # repro: allow[REP101] not a comment."""\n'
        "import time\n"
        "\n"
        "t = time.time()\n"
    )
    findings = lint_source(source, "src/repro/simulator/doc.py", ALL_RULES)
    assert [(f.rule, f.line, f.active) for f in findings] == [("REP101", 4, True)]


def test_parse_error_is_rep999_not_crash():
    findings = lint_source("def broken(:\n", "src/repro/simulator/bad.py", ALL_RULES)
    assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
    assert findings[0].active


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #
def test_baseline_round_trip(tmp_path):
    findings = lint_source(VIOLATION, "src/repro/campaign/x.py", ALL_RULES)
    assert len(findings) == 1 and findings[0].rule == "REP202"
    baseline_path = tmp_path / "bl.json"
    write_baseline(baseline_path, findings)
    loaded = load_baseline(baseline_path)
    assert loaded == {fingerprint(findings[0]): 1}
    marked = apply_baseline(findings, loaded)
    assert marked[0].baselined and not marked[0].active


def test_baseline_budget_is_per_fingerprint_count(tmp_path):
    """One grandfathered copy does not excuse a second identical violation."""
    baseline_path = tmp_path / "bl.json"
    one = lint_source(VIOLATION, "src/repro/campaign/x.py", ALL_RULES)
    write_baseline(baseline_path, one)
    doubled = VIOLATION + "\n\ndef again(path):\n    return CampaignStore(path)\n"
    two = lint_source(doubled, "src/repro/campaign/x.py", ALL_RULES)
    assert len(two) == 2
    marked = apply_baseline(two, load_baseline(baseline_path))
    assert sum(f.baselined for f in marked) == 1
    assert sum(f.active for f in marked) == 1


def test_baseline_rejects_foreign_json(tmp_path):
    path = tmp_path / "bl.json"
    path.write_text('{"not": "a baseline"}')
    with pytest.raises(ValueError):
        load_baseline(path)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def test_cli_exit_codes_and_baseline_flow(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION)
    baseline = tmp_path / "bl.json"

    assert cli.main([str(bad), "--no-baseline"]) == 1
    assert "REP202" in capsys.readouterr().out

    assert cli.main([str(bad), "--write-baseline", "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert cli.main([str(bad), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # --no-baseline reveals the grandfathered finding again.
    assert cli.main([str(bad), "--no-baseline"]) == 1
    capsys.readouterr()


def test_cli_unknown_rule_is_usage_error(tmp_path, capsys):
    assert cli.main([str(tmp_path), "--select", "REP123"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_json_report(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION)
    out = tmp_path / "lint.json"
    code = cli.main(
        [str(bad), "--no-baseline", "--format", "json", "--output", str(out)]
    )
    capsys.readouterr()
    assert code == 1
    payload = json.loads(out.read_text())
    assert payload["files_checked"] == 1
    assert payload["counts"] == {"active": 1, "suppressed": 0, "baselined": 0}
    (finding,) = payload["findings"]
    assert finding["rule"] == "REP202"
    assert finding["line"] == 5 and finding["suppressed"] is False


def test_cli_select_runs_only_selected_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    # Violates REP202; selecting only REP401 must report nothing.
    bad.write_text(VIOLATION)
    assert cli.main([str(bad), "--no-baseline", "--select", "REP401"]) == 0
    capsys.readouterr()


# --------------------------------------------------------------------- #
# Meta gates: the repo itself
# --------------------------------------------------------------------- #
def test_repo_src_lints_clean(monkeypatch, capsys):
    """The CI gate: ``python -m repro.lintkit src`` exits 0 on this repo."""
    monkeypatch.chdir(REPO_ROOT)
    assert cli.main(["src"]) == 0
    capsys.readouterr()


def test_committed_baseline_is_empty_for_engine_packages():
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    engine_entries = [
        key
        for key in baseline
        if key.startswith(("src/repro/simulator/", "src/repro/scenario/"))
    ]
    assert engine_entries == [], (
        "determinism findings in simulator/ or scenario/ must be fixed or "
        "# repro: allow-ed with a reason, never grandfathered"
    )
