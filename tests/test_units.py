"""Tests for the unit helpers."""

import pytest

from repro import units


def test_kbps_mbps_gbps_scale_correctly():
    assert units.kbps(1) == 1_000
    assert units.mbps(1) == 1_000_000
    assert units.gbps(1) == 1_000_000_000


def test_bandwidth_round_trip():
    assert units.to_mbps(units.mbps(37.5)) == pytest.approx(37.5)
    assert units.to_gbps(units.gbps(2.5)) == pytest.approx(2.5)


def test_time_helpers():
    assert units.milliseconds(250) == pytest.approx(0.25)
    assert units.to_milliseconds(0.02) == pytest.approx(20.0)
    assert units.minutes(15) == 900
    assert units.hours(2) == 7200
    assert units.days(1) == 86_400


def test_percent_and_fraction_are_inverses():
    assert units.percent(0.42) == pytest.approx(42.0)
    assert units.fraction(42.0) == pytest.approx(0.42)
    assert units.fraction(units.percent(0.17)) == pytest.approx(0.17)


def test_watts_is_identity():
    assert units.watts(600) == 600.0


def test_constants_are_consistent():
    assert units.HOUR == 60 * units.MINUTE
    assert units.DAY == 24 * units.HOUR
    assert units.GIGA == 1_000 * units.MEGA
