"""Tests for concurrent campaign execution: store locking, leases, workers.

The store-level regressions pinned here are the PR's bugfixes: readers and
second writers must wait (or proceed) instead of raising ``database is
locked``, a chunk persists atomically or not at all, and an ``error`` point
that later succeeds transitions to ``done`` exactly once.  On top of the
hardened store, the lease protocol is unit-tested with an injected clock
and the multi-worker drain is property-tested for bit-identity against a
serial run — including after a simulated worker crash.
"""

import json
import sqlite3
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    PointRecord,
    run_campaign,
    run_campaign_workers,
)
from repro.campaign.store import STORE_SCHEMA_VERSION
from repro.exceptions import ConfigurationError
from repro.experiments.runner import main, suggest_chunk_size
from repro.scenario.registry import is_registered, register, resolve


# --------------------------------------------------------------------- #
# Fixtures: cheap scenario stacks (mirrors tests/test_campaign.py)
# --------------------------------------------------------------------- #
def base_scenario():
    return {
        "topology": "geant",
        "traffic": {
            "name": "uniform",
            "params": {"num_pairs": 6, "num_endpoints": 5, "flow_bps": 1e8, "seed": 0},
        },
        "power": "cisco",
        "schemes": [{"name": "response", "params": {"num_paths": 2, "k": 2}}, "ecmp"],
    }


def campaign_dict(name="grid", axes=None):
    return {
        "name": name,
        "base": base_scenario(),
        "axes": axes
        if axes is not None
        else {"seed": [0, 1], "set": {"traffic.flow_bps": [1e8, 1.5e8]}},
    }


def twentyfour_point_campaign(name="grid24"):
    """A 24-point grid of cheap points (6 seeds x 2 rates x 2 SLOs)."""
    return campaign_dict(
        name,
        axes={
            "seed": [0, 1, 2, 3, 4, 5],
            "set": {
                "traffic.flow_bps": [1e8, 1.5e8],
                "scenario.utilisation_threshold": [0.85, 0.9],
            },
        },
    )


def registered_store(tmp_path, spec_dict, filename="store.sqlite"):
    """A store with the campaign registered but no point executed."""
    spec = CampaignSpec.from_dict(spec_dict)
    points = spec.expand()
    store_path = tmp_path / filename
    with CampaignStore(store_path) as store:
        campaign_id = store.register_campaign(spec, points)
    return store_path, campaign_id, points


# A deliberately flaky traffic workload: the first build attempt (per
# marker file) raises, every later one delegates to the real ``uniform``
# builder.  Registered at import so serial in-process campaign execution
# (and forked workers) can resolve it by name.
if not is_registered("traffic", "flaky-uniform"):

    @register("traffic", "flaky-uniform")
    def _flaky_uniform(topology, marker_path="", **params):
        """Uniform traffic that fails once per marker file, then succeeds."""
        marker = Path(marker_path)
        if not marker.exists():
            marker.write_text("attempted")
            raise RuntimeError("deliberate first-attempt failure")
        return resolve("traffic", "uniform")(topology, **params)


# --------------------------------------------------------------------- #
# Store hardening: WAL, busy timeout, read-only connections
# --------------------------------------------------------------------- #
def test_store_opens_in_wal_mode_with_busy_timeout(tmp_path):
    with CampaignStore(tmp_path / "store.sqlite") as store:
        journal = store._connection.execute("PRAGMA journal_mode").fetchone()[0]
        timeout_ms = store._connection.execute("PRAGMA busy_timeout").fetchone()[0]
        assert journal == "wal"
        assert timeout_ms >= 1000


def test_status_and_report_read_during_in_progress_chunked_write(tmp_path):
    """Regression: a reader must not raise while a chunk write is open."""
    store_path = tmp_path / "store.sqlite"
    spec = CampaignSpec.from_dict(campaign_dict())
    summary = run_campaign(spec, store_path=store_path, max_points=1)
    with CampaignStore(store_path) as writer:
        # Hold an open write transaction with rows already written — the
        # exact state a second process sees mid-chunk.
        writer._connection.execute("BEGIN IMMEDIATE")
        writer._connection.execute(
            "INSERT OR REPLACE INTO results (config_hash, result_json, created_at) "
            "VALUES ('feed' || 'beef', '{}', '2026-01-01')"
        )
        try:
            with CampaignStore(store_path, read_only=True) as reader:
                campaigns = reader.campaigns()
                assert campaigns[0]["done"] == 1
                counts = reader.status_counts(summary.campaign_id)
                assert counts["done"] == 1
                assert reader.metric_rows(summary.campaign_id)
                dump = reader.canonical_dump(summary.campaign_id)
                # Uncommitted rows of the in-flight chunk stay invisible.
                assert "feedbeef" not in dump["results"]
            # The CLI read paths go through the same read-only connection.
            assert main(["campaign-status", "--store", str(store_path)]) == 0
            assert main(["campaign-report", "--store", str(store_path)]) == 0
        finally:
            writer._connection.execute("ROLLBACK")


def test_second_writer_waits_for_lock_instead_of_erroring(tmp_path):
    """Regression: concurrent writers queue on the busy timeout."""
    store_path = tmp_path / "store.sqlite"
    spec = CampaignSpec.from_dict(campaign_dict())
    points = spec.expand()
    with CampaignStore(store_path) as store:
        campaign_id = store.register_campaign(spec, points)

    release = threading.Event()
    holder_ready = threading.Event()

    def hold_write_lock():
        connection = sqlite3.connect(str(store_path))
        connection.execute("PRAGMA busy_timeout = 5000")
        connection.execute("BEGIN IMMEDIATE")
        holder_ready.set()
        release.wait(timeout=10)
        connection.execute("COMMIT")
        connection.close()

    holder = threading.Thread(target=hold_write_lock)
    holder.start()
    try:
        assert holder_ready.wait(timeout=10)
        timer = threading.Timer(0.3, release.set)
        timer.start()
        # The write starts while the lock is held and must simply wait.
        with CampaignStore(store_path, busy_timeout_s=10) as store:
            store.record_failure(campaign_id, points[0], "boom", 0.1)
            assert store.status_counts(campaign_id)["error"] == 1
        timer.cancel()
    finally:
        release.set()
        holder.join(timeout=10)


def test_read_only_store_refuses_writes_and_missing_files(tmp_path):
    store_path = tmp_path / "store.sqlite"
    spec = CampaignSpec.from_dict(campaign_dict())
    points = spec.expand()
    with CampaignStore(store_path) as store:
        campaign_id = store.register_campaign(spec, points)
    with CampaignStore(store_path, read_only=True) as reader:
        with pytest.raises(ConfigurationError, match="read-only"):
            reader.record_failure(campaign_id, points[0], "x", 0.0)
        with pytest.raises(ConfigurationError, match="read-only"):
            reader.claim_points(campaign_id, "w", 1, 60.0)
    with pytest.raises(ConfigurationError, match="does not exist"):
        CampaignStore(tmp_path / "missing.sqlite", read_only=True)


def test_v1_store_migrates_to_lease_schema(tmp_path):
    """A pre-lease (schema v1) store is migrated in place, data intact."""
    store_path = tmp_path / "old.sqlite"
    connection = sqlite3.connect(store_path)
    connection.executescript(
        """
        CREATE TABLE campaigns (
            campaign_id TEXT PRIMARY KEY, name TEXT NOT NULL,
            spec_json TEXT NOT NULL, num_points INTEGER NOT NULL,
            created_at TEXT NOT NULL
        );
        CREATE TABLE points (
            campaign_id TEXT NOT NULL, config_hash TEXT NOT NULL,
            point_index INTEGER NOT NULL, name TEXT NOT NULL,
            axes_json TEXT NOT NULL, spec_json TEXT NOT NULL,
            status TEXT NOT NULL DEFAULT 'pending', error TEXT,
            elapsed_s REAL, completed_at TEXT,
            PRIMARY KEY (campaign_id, config_hash)
        );
        CREATE TABLE results (
            config_hash TEXT PRIMARY KEY, result_json TEXT NOT NULL,
            created_at TEXT NOT NULL
        );
        CREATE TABLE metrics (
            config_hash TEXT NOT NULL, scheme TEXT NOT NULL,
            metric TEXT NOT NULL, value REAL,
            PRIMARY KEY (config_hash, scheme, metric)
        );
        INSERT INTO campaigns VALUES ('cid', 'legacy', '{}', 1, '2026-01-01');
        INSERT INTO points (campaign_id, config_hash, point_index, name,
                            axes_json, spec_json)
        VALUES ('cid', 'hash0', 0, 'legacy/p0', '{}', '{}');
        PRAGMA user_version = 1;
        """
    )
    connection.commit()
    connection.close()
    with CampaignStore(store_path) as store:
        version = store._connection.execute("PRAGMA user_version").fetchone()[0]
        assert version == STORE_SCHEMA_VERSION
        assert store.point_statuses("cid") == {"hash0": "pending"}
        # The migrated store speaks the lease protocol.
        assert store.claim_points("cid", "w1", 5, 60.0) == ["hash0"]
        assert store.active_leases("cid")[0]["worker"] == "w1"


# --------------------------------------------------------------------- #
# Lease protocol (injected clock — fully deterministic)
# --------------------------------------------------------------------- #
def test_v1_store_migration_survives_concurrent_opens(tmp_path):
    """Regression: racing writable opens of a v1 store migrate it once.

    The loser of the write-lock race must re-read ``user_version`` inside
    its transaction and skip the ALTERs instead of crashing on
    ``duplicate column name``.
    """
    store_path = tmp_path / "old.sqlite"
    connection = sqlite3.connect(store_path)
    connection.executescript(
        """
        CREATE TABLE campaigns (campaign_id TEXT PRIMARY KEY, name TEXT,
            spec_json TEXT, num_points INTEGER, created_at TEXT);
        CREATE TABLE points (campaign_id TEXT, config_hash TEXT,
            point_index INTEGER, name TEXT, axes_json TEXT, spec_json TEXT,
            status TEXT DEFAULT 'pending', error TEXT, elapsed_s REAL,
            completed_at TEXT, PRIMARY KEY (campaign_id, config_hash));
        CREATE TABLE results (config_hash TEXT PRIMARY KEY,
            result_json TEXT, created_at TEXT);
        CREATE TABLE metrics (config_hash TEXT, scheme TEXT, metric TEXT,
            value REAL, PRIMARY KEY (config_hash, scheme, metric));
        PRAGMA user_version = 1;
        """
    )
    connection.commit()
    connection.close()

    barrier = threading.Barrier(4)
    failures = []

    def open_and_migrate():
        barrier.wait(timeout=10)
        try:
            with CampaignStore(store_path) as store:
                version = store._connection.execute(
                    "PRAGMA user_version"
                ).fetchone()[0]
                assert version == STORE_SCHEMA_VERSION
        except BaseException as error:  # noqa: BLE001 - collected for assert
            failures.append(error)

    threads = [threading.Thread(target=open_and_migrate) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert failures == []


def test_claim_renew_expire_and_release(tmp_path):
    store_path, campaign_id, points = registered_store(
        tmp_path, campaign_dict(axes={"seed": [0, 1, 2, 3]})
    )
    hashes = [point.config_hash for point in points]
    with CampaignStore(store_path) as store:
        # Claims follow grid order and never overlap.
        first = store.claim_points(campaign_id, "w1", 2, 10.0, now=1000.0)
        assert first == hashes[:2]
        second = store.claim_points(campaign_id, "w2", 10, 10.0, now=1000.0)
        assert second == hashes[2:]
        assert store.claim_points(campaign_id, "w3", 1, 10.0, now=1005.0) == []
        # w1 heartbeats; w2 goes silent and expires at t=1010.
        assert store.renew_leases(campaign_id, "w1", 10.0, now=1008.0) == 2
        reclaimed = store.claim_points(campaign_id, "w3", 10, 10.0, now=1012.0)
        assert reclaimed == hashes[2:]  # w2's expired points, not w1's
        leases = store.active_leases(campaign_id, now=1012.0)
        assert {lease["worker"]: lease["points"] for lease in leases} == {
            "w1": 2,
            "w3": 2,
        }
        # Explicit release makes points claimable immediately.
        assert store.release_leases(campaign_id, "w3") == 2
        assert store.claim_points(campaign_id, "w4", 10, 10.0, now=1012.0) == hashes[2:]
        # Recording an outcome clears the lease and removes the point from
        # every future claim (status is no longer pending).
        store.record_failure(campaign_id, points[0], "boom", 0.1)
        assert store.renew_leases(campaign_id, "w1", 10.0, now=1013.0) == 1
        # Far in the future every lease has expired: everything pending is
        # claimable again — but never the failed (error) point.
        assert store.claim_points(campaign_id, "w5", 10, 10.0, now=2000.0) == hashes[1:]


def test_claim_points_limit_and_validation(tmp_path):
    store_path, campaign_id, points = registered_store(tmp_path, campaign_dict())
    with CampaignStore(store_path) as store:
        assert store.claim_points(campaign_id, "w1", 0, 10.0, now=0.0) == []
        assert len(store.claim_points(campaign_id, "w1", 3, 10.0, now=0.0)) == 3


def test_suggest_chunk_size_spreads_claims():
    assert suggest_chunk_size(0) == 1
    assert suggest_chunk_size(24) == 1  # serial: per-point durability
    assert suggest_chunk_size(24, pool_size=4) == 4
    assert suggest_chunk_size(24, workers=3) == 2  # ~4 claims per worker
    assert suggest_chunk_size(1000, workers=4) == 8  # capped crash loss
    assert suggest_chunk_size(2, workers=4) == 1
    with pytest.raises(ConfigurationError):
        suggest_chunk_size(10, workers=0)


# --------------------------------------------------------------------- #
# Chunk atomicity (fault injection)
# --------------------------------------------------------------------- #
class _ExplodingResult:
    """Stands in for a ScenarioResult whose persist dies mid-chunk."""

    def to_dict(self):
        raise KeyboardInterrupt("writer killed between rows")

    def headline_metrics(self):  # pragma: no cover - never reached
        return {}


def test_interrupted_chunk_persist_leaves_no_partial_rows(tmp_path):
    """Regression: a kill mid-chunk must roll the whole chunk back."""
    store_path, campaign_id, points = registered_store(tmp_path, campaign_dict())
    good = run_campaign(
        CampaignSpec.from_dict(campaign_dict()),
        store_path=tmp_path / "donor.sqlite",
        max_points=1,
    )
    with CampaignStore(tmp_path / "donor.sqlite") as donor:
        real_result = donor.result(points[0].config_hash)
    assert good.executed == 1 and real_result is not None

    with CampaignStore(store_path) as store:
        records = [
            PointRecord(point=points[0], result=real_result, elapsed_s=0.1),
            PointRecord(point=points[1], result=_ExplodingResult(), elapsed_s=0.1),
        ]
        with pytest.raises(KeyboardInterrupt):
            store.record_chunk(campaign_id, records)
        # Nothing of the chunk may have landed: not the first (valid) row,
        # not its metrics, not the status flips.
        counts = store.status_counts(campaign_id)
        assert counts == {"done": 0, "error": 0, "pending": 4, "total": 4}
        assert store.result(points[0].config_hash) is None
        assert store.metric_rows(campaign_id) == []
        # The store remains usable: the same chunk minus the poison pill
        # commits cleanly afterwards.
        store.record_chunk(
            campaign_id, [PointRecord(point=points[0], result=real_result)]
        )
        assert store.status_counts(campaign_id)["done"] == 1


def test_failed_chunk_write_releases_worker_leases(tmp_path):
    """A worker interrupted mid-batch hands its leases straight back."""
    spec_dict = campaign_dict()
    store_path, campaign_id, points = registered_store(tmp_path, spec_dict)

    def kill_execution(*_args, **_kwargs):
        raise KeyboardInterrupt("worker killed mid-batch")

    import repro.campaign.run as campaign_run

    original = campaign_run.execute_point_outcome
    campaign_run.execute_point_outcome = kill_execution
    try:
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                spec_dict,
                store_path=store_path,
                worker_id="doomed",
                chunk_size=2,
            )
    finally:
        campaign_run.execute_point_outcome = original
    with CampaignStore(store_path) as store:
        assert store.active_leases(campaign_id) == []
        counts = store.status_counts(campaign_id)
        assert counts["pending"] == 4 and counts["done"] == 0


# --------------------------------------------------------------------- #
# Error -> done transitions across invocations (flaky point)
# --------------------------------------------------------------------- #
def flaky_campaign(tmp_path, name):
    base = base_scenario()
    base["traffic"] = {
        "name": "flaky-uniform",
        "params": {
            "marker_path": str(tmp_path / f"{name}.marker"),
            "num_pairs": 6,
            "num_endpoints": 5,
            "flow_bps": 1e8,
            "seed": 0,
        },
    }
    return {"name": name, "base": base, "axes": {"seed": [0, 1]}}


def test_error_point_transitions_to_done_exactly_once(tmp_path):
    """Regression: error -> done on resume, without inflating counts."""
    spec_dict = flaky_campaign(tmp_path, "flaky")
    store_path = tmp_path / "store.sqlite"

    first = run_campaign(spec_dict, store_path=store_path)
    assert first.executed == 2
    assert first.failed == 1  # seed 0 builds the marker and fails
    with CampaignStore(store_path) as store:
        counts = store.status_counts(first.campaign_id)
        assert counts == {"done": 1, "error": 1, "pending": 0, "total": 2}

    second = run_campaign(spec_dict, store_path=store_path)
    assert second.executed == 1  # only the failed point re-ran
    assert second.failed == 0
    assert second.remaining == 0
    with CampaignStore(store_path) as store:
        counts = store.status_counts(second.campaign_id)
        assert counts == {"done": 2, "error": 0, "pending": 0, "total": 2}
        row = store.campaigns()[0]
        assert (row["done"], row["errors"]) == (2, 0)
        # The recovered point is clean: no stale traceback, exactly one
        # result row behind its hash.
        recovered = [
            point
            for point in store.points(second.campaign_id)
            if point["status"] == "done"
        ]
        assert len(recovered) == 2
        assert all(point["error"] is None for point in recovered)

    third = run_campaign(spec_dict, store_path=store_path)
    assert third.executed == 0 and third.failed == 0
    assert third.completed_before == 2


def test_error_point_recovers_under_worker_mode(tmp_path):
    """Worker invocations retry previous failures exactly like serial."""
    spec_dict = flaky_campaign(tmp_path, "flaky-worker")
    store_path = tmp_path / "store.sqlite"
    first = run_campaign(spec_dict, store_path=store_path, worker_id="w1")
    assert first.executed == 2 and first.failed == 1
    second = run_campaign(spec_dict, store_path=store_path, worker_id="w1")
    assert second.executed == 1 and second.failed == 0
    with CampaignStore(store_path) as store:
        counts = store.status_counts(second.campaign_id)
        assert counts == {"done": 2, "error": 0, "pending": 0, "total": 2}


def test_error_point_recovers_under_worker_fleet(tmp_path):
    """Fleet invocations reset errors once, pre-fork, then retry them."""
    spec_dict = flaky_campaign(tmp_path, "flaky-fleet")
    store_path = tmp_path / "store.sqlite"
    first = run_campaign_workers(spec_dict, store_path=store_path, workers=2)
    assert first.executed == 2 and first.failed == 1
    second = run_campaign_workers(spec_dict, store_path=store_path, workers=2)
    assert second.executed == 1 and second.failed == 0 and second.remaining == 0
    with CampaignStore(store_path) as store:
        counts = store.status_counts(second.campaign_id)
        assert counts == {"done": 2, "error": 0, "pending": 0, "total": 2}


def test_worker_with_reset_errors_off_leaves_error_points_alone(tmp_path):
    """The fleet's workers must not re-reset a peer's fresh failure."""
    spec_dict = flaky_campaign(tmp_path, "flaky-noreset")
    store_path = tmp_path / "store.sqlite"
    first = run_campaign(spec_dict, store_path=store_path, worker_id="w1")
    assert first.failed == 1
    # A worker told not to reset (what fleet children run) skips the
    # error point entirely instead of retrying it.
    second = run_campaign(
        spec_dict, store_path=store_path, worker_id="w2", reset_errors=False
    )
    assert second.executed == 0
    with CampaignStore(store_path) as store:
        assert store.status_counts(second.campaign_id)["error"] == 1


# --------------------------------------------------------------------- #
# Worker-vs-serial identity (the acceptance property)
# --------------------------------------------------------------------- #
def canonical_dumps_match(serial_path, serial_id, other_path, other_id):
    with CampaignStore(serial_path, read_only=True) as a:
        dump_serial = a.canonical_dump(serial_id)
    with CampaignStore(other_path, read_only=True) as b:
        dump_other = b.canonical_dump(other_id)
    return dump_serial == dump_other


@pytest.mark.parametrize("workers", [2, 3])
def test_workers_drain_matches_serial_store(tmp_path, workers):
    """N workers on one 24-point grid == one serial run, bit for bit."""
    spec_dict = twentyfour_point_campaign()
    serial_path = tmp_path / "serial.sqlite"
    serial = run_campaign(spec_dict, store_path=serial_path)
    assert (serial.executed, serial.failed) == (24, 0)

    fleet_path = tmp_path / f"fleet{workers}.sqlite"
    fleet = run_campaign_workers(spec_dict, store_path=fleet_path, workers=workers)
    assert fleet.workers == workers
    assert fleet.executed == 24
    assert fleet.failed == 0
    assert fleet.remaining == 0
    assert canonical_dumps_match(
        serial_path, serial.campaign_id, fleet_path, fleet.campaign_id
    )


def test_workers_reclaim_crashed_workers_points_and_match_serial(tmp_path):
    """A dead worker's leased points are reclaimed after lease expiry."""
    spec_dict = twentyfour_point_campaign("grid24-crash")
    serial_path = tmp_path / "serial.sqlite"
    serial = run_campaign(spec_dict, store_path=serial_path)

    fleet_path = tmp_path / "fleet.sqlite"
    store_path, campaign_id, points = registered_store(
        tmp_path, spec_dict, "fleet.sqlite"
    )
    # Simulate a worker that claimed a batch and was SIGKILLed: the lease
    # exists, nothing was persisted, and no heartbeat will ever come.
    with CampaignStore(fleet_path) as store:
        crashed = store.claim_points(campaign_id, "crashed-worker", 6, 0.05)
        assert len(crashed) == 6
    time.sleep(0.1)  # let the crashed worker's lease expire

    fleet = run_campaign_workers(
        spec_dict, store_path=fleet_path, workers=2, lease_seconds=30.0
    )
    assert fleet.executed == 24  # including the crashed worker's 6 points
    assert fleet.remaining == 0
    assert canonical_dumps_match(
        serial_path, serial.campaign_id, fleet_path, fleet.campaign_id
    )


def test_single_worker_invocation_resumes_bounded_slices(tmp_path):
    """worker_id + max_points: bounded cooperative slices still resume."""
    spec_dict = campaign_dict()
    store_path = tmp_path / "store.sqlite"
    first = run_campaign(
        spec_dict, store_path=store_path, worker_id="w1", max_points=3
    )
    assert first.executed == 3 and first.remaining == 1
    second = run_campaign(spec_dict, store_path=store_path, worker_id="w2")
    assert second.executed == 1 and second.remaining == 0
    serial_path = tmp_path / "serial.sqlite"
    serial = run_campaign(spec_dict, store_path=serial_path)
    assert canonical_dumps_match(
        serial_path, serial.campaign_id, store_path, second.campaign_id
    )


def test_worker_mode_rejects_parallel_pools(tmp_path):
    with pytest.raises(ConfigurationError, match="worker mode"):
        run_campaign(
            campaign_dict(),
            store_path=tmp_path / "store.sqlite",
            worker_id="w1",
            parallel=True,
        )
    with pytest.raises(ConfigurationError, match="workers"):
        run_campaign_workers(
            campaign_dict(), store_path=tmp_path / "store.sqlite", workers=0
        )


def test_non_positive_lease_seconds_is_rejected(tmp_path):
    """A lease of 0 is born expired — every worker would double-claim."""
    for lease in (0.0, -5.0):
        with pytest.raises(ConfigurationError, match="lease_seconds"):
            run_campaign(
                campaign_dict(),
                store_path=tmp_path / "store.sqlite",
                worker_id="w1",
                lease_seconds=lease,
            )
        with pytest.raises(ConfigurationError, match="lease_seconds"):
            run_campaign_workers(
                campaign_dict(),
                store_path=tmp_path / "store.sqlite",
                workers=2,
                lease_seconds=lease,
            )


# --------------------------------------------------------------------- #
# Command line
# --------------------------------------------------------------------- #
def test_cli_workers_drain_and_status_leases(tmp_path, capsys):
    spec_path = tmp_path / "campaign.json"
    spec_path.write_text(json.dumps(campaign_dict("cli-workers")))
    store_path = tmp_path / "store.sqlite"
    assert (
        main(
            [
                "run-campaign",
                "--spec",
                str(spec_path),
                "--store",
                str(store_path),
                "--workers",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "workers: 2" in out
    assert "4 executed" in out and "0 remaining" in out
    # Re-running with workers resumes (nothing executed the second time).
    assert (
        main(
            [
                "run-campaign",
                "--spec",
                str(spec_path),
                "--store",
                str(store_path),
                "--workers",
                "2",
                "--json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["executed"] == 0
    assert payload["completed_before"] == 4
    assert payload["workers"] == 2
    assert main(["campaign-status", "--store", str(store_path), "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["campaigns"][0]["done"] == 4
    assert status["leases"] == {status["campaigns"][0]["campaign_id"]: []}


def test_active_leases_expose_worker_id_and_expires_at(tmp_path):
    """Lease rows carry both the legacy and the service field names.

    ``campaign-status --json`` and the service's status endpoint share one
    code path (``CampaignStore.active_leases``); this pins the row shape
    both consumers rely on (service satellite).
    """
    store_path, campaign_id, points = registered_store(tmp_path, campaign_dict())
    with CampaignStore(store_path) as store:
        store.claim_points(campaign_id, "w1", 2, 10.0, now=1000.0)
        (lease,) = store.active_leases(campaign_id, now=1004.0)
        assert lease["worker_id"] == lease["worker"] == "w1"
        assert lease["points"] == 2
        assert lease["expires_at"] == 1010.0  # absolute, time.time scale
        assert lease["expires_in_s"] == pytest.approx(6.0)


def test_cli_campaign_status_json_reports_lease_fields(tmp_path, capsys):
    """The --json status payload includes worker_id/expires_at per lease."""
    store_path, campaign_id, points = registered_store(tmp_path, campaign_dict())
    far_future = time.time() + 3600.0
    with CampaignStore(store_path) as store:
        store.claim_points(campaign_id, "svc-worker", 3, 3600.0)
    assert main(["campaign-status", "--store", str(store_path), "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    (lease,) = status["leases"][campaign_id]
    assert lease["worker_id"] == lease["worker"] == "svc-worker"
    assert lease["points"] == 3
    assert lease["expires_at"] == pytest.approx(far_future, abs=60.0)
    assert 0.0 < lease["expires_in_s"] <= 3600.0


def test_cli_rejects_conflicting_execution_modes(tmp_path, capsys):
    spec_path = tmp_path / "campaign.json"
    spec_path.write_text(json.dumps(campaign_dict()))
    for flags in (
        ["--workers", "2", "--parallel"],
        ["--workers", "2", "--worker-id", "w1"],
        ["--worker-id", "w1", "--parallel"],
        ["--workers", "0"],
        ["--workers", "2", "--lease-seconds", "0"],
    ):
        with pytest.raises(SystemExit):
            main(
                ["run-campaign", "--spec", str(spec_path), "--store", "x.sqlite"]
                + flags
            )
        capsys.readouterr()
