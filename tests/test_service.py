"""Tests for the scenario service: routing, validation, jobs, streaming.

The load-bearing guarantees pinned here:

* every read endpoint serves the same data as its CLI twin (components
  listing, status counts, lease rows, report aggregation);
* the streaming replay's per-interval records are **bit-identical** to an
  offline :func:`~repro.scenario.engine.run_scenario` of the same spec —
  power, utilisation and violation series compare equal, element by
  element, and the stream's final record *is* the offline result;
* a campaign drained through ``POST /campaigns`` leaves a store whose
  ``canonical_dump`` equals a clean serial ``run_campaign`` of the same
  spec;
* concurrent read-only consumers never observe an error while a
  submitted campaign is actively writing the store.
"""

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from contextlib import contextmanager

import pytest

from repro.campaign import CampaignSpec, CampaignStore, run_campaign
from repro.campaign.store import canonical_result_dict
from repro.scenario.engine import run_scenario
from repro.scenario.registry import registered_components
from repro.service.handlers import ServiceState
from repro.service.jobs import RUNNING, CampaignJob, JobManager
from repro.service.schemas import (
    ServiceError,
    campaign_request,
    points_query,
    report_query,
    scenario_spec_from_request,
)
from repro.service.server import ServiceConfig, create_server


# --------------------------------------------------------------------- #
# Fixtures: cheap scenario stacks (mirrors tests/test_campaign.py)
# --------------------------------------------------------------------- #
def base_scenario():
    return {
        "name": "svc-scenario",
        "topology": "geant",
        "traffic": {
            "name": "uniform",
            "params": {"num_pairs": 6, "num_endpoints": 5, "flow_bps": 1e8, "seed": 0},
        },
        "power": "cisco",
        "schemes": [{"name": "response", "params": {"num_paths": 2, "k": 2}}, "ecmp"],
    }


def eventful_scenario():
    spec = base_scenario()
    spec["name"] = "svc-eventful"
    spec["events"] = [
        {"name": "link-failure", "params": {"time_s": 0.0, "link": ["DE", "FR"]}}
    ]
    return spec


def campaign_dict(name="svc-grid"):
    return {
        "name": name,
        "base": base_scenario(),
        "axes": {"seed": [0, 1], "set": {"traffic.flow_bps": [1e8, 1.5e8]}},
    }


@contextmanager
def service(tmp_path, **config_overrides):
    """A live service on an ephemeral port, torn down afterwards."""
    settings = dict(
        host="127.0.0.1", port=0, store=str(tmp_path / "service.sqlite")
    )
    settings.update(config_overrides)
    server = create_server(ServiceConfig(**settings))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def get_json(server, path):
    with urllib.request.urlopen(server.url + path, timeout=60) as response:
        return response.status, json.loads(response.read())


def post_json(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return response.status, json.loads(response.read())


def request_error(server, path, payload=None, method=None):
    """The (status, error payload) of a request expected to fail."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        server.url + path,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=60)
    body = json.loads(excinfo.value.read())
    return excinfo.value.code, body["error"]


def stream_replay(server, spec, via_get=False):
    """Every NDJSON record of a replay stream, in order."""
    if via_get:
        query = urllib.parse.urlencode({"spec": json.dumps(spec)})
        request = urllib.request.Request(
            server.url + "/scenarios/replay?" + query
        )
    else:
        request = urllib.request.Request(
            server.url + "/scenarios/replay",
            data=json.dumps({"spec": spec}).encode("utf-8"),
            method="POST",
        )
    with urllib.request.urlopen(request, timeout=300) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("application/x-ndjson")
        lines = response.read().splitlines()
    return [json.loads(line) for line in lines]


def wait_for_job(server, campaign_id, timeout_s=120.0):
    """Poll the status endpoint until the background job leaves ``running``."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, status = get_json(server, f"/campaigns/{campaign_id[:12]}/status")
        if status.get("job", {}).get("state") != "running":
            return status
        time.sleep(0.05)
    raise AssertionError(f"campaign {campaign_id[:12]} still running after {timeout_s}s")


# --------------------------------------------------------------------- #
# Plumbing: index, health, components, errors
# --------------------------------------------------------------------- #
def test_index_health_and_components_match_registry(tmp_path):
    with service(tmp_path) as server:
        status, index = get_json(server, "/")
        assert status == 200
        assert "GET /components" in index["endpoints"]
        status, health = get_json(server, "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, payload = get_json(server, "/components")
        assert status == 200
        # Same data as `list-components --json`: both sides call
        # registered_components().
        assert payload["components"] == registered_components()


def test_unknown_routes_and_malformed_bodies(tmp_path):
    with service(tmp_path) as server:
        code, error = request_error(server, "/nope")
        assert (code, error["code"]) == (404, "not-found")
        code, error = request_error(server, "/campaigns/zzz/nope")
        assert code == 404
        # POST /scenarios with a broken body dies at the edge.
        request = urllib.request.Request(
            server.url + "/scenarios", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=60)
        assert excinfo.value.code == 400
        code, error = request_error(server, "/scenarios", {"spec": {"name": "x"}})
        assert (code, error["code"]) == (400, "invalid-scenario")
        # Campaign store does not exist yet: specific lookups are 404s...
        code, error = request_error(server, "/campaigns/any/status")
        assert (code, error["code"]) == (404, "no-store")
        # ...but the listing is just empty.
        status, listing = get_json(server, "/campaigns")
        assert status == 200 and listing["campaigns"] == []


# --------------------------------------------------------------------- #
# POST /scenarios: one-shot runs with the sweep cache
# --------------------------------------------------------------------- #
def test_post_scenario_result_and_sweep_cache(tmp_path):
    offline = run_scenario(base_scenario())
    with service(tmp_path, cache_dir=str(tmp_path / "cache")) as server:
        status, first = post_json(server, "/scenarios", {"spec": base_scenario()})
        assert status == 200 and first["cache"] == "miss"
        # Identical to the offline engine, wall-clock timings aside.
        assert canonical_result_dict(first["result"]) == canonical_result_dict(
            offline.to_dict()
        )
        # The second submission of the same spec is served from disk.
        status, second = post_json(server, "/scenarios", base_scenario())
        assert second["cache"] == "hit"
        assert second["result"] == first["result"]
    with service(tmp_path) as server:
        _, uncached = post_json(server, "/scenarios", {"spec": base_scenario()})
        assert uncached["cache"] == "disabled"


def test_post_scenario_unknown_component_param_is_400(tmp_path):
    spec = base_scenario()
    spec["traffic"]["params"]["no_such_knob"] = 1
    with service(tmp_path) as server:
        code, error = request_error(server, "/scenarios", {"spec": spec})
        assert (code, error["code"]) == (400, "invalid-scenario")


# --------------------------------------------------------------------- #
# Streaming replay: bit-identity with the offline engine
# --------------------------------------------------------------------- #
def assert_stream_matches_offline(records, offline):
    """The stream's interval series must equal the offline result exactly."""
    assert records[0]["type"] == "start"
    assert records[-1]["type"] == "end"
    intervals = [record for record in records if record["type"] == "interval"]
    assert records[0]["config_hash"] == offline.config_hash
    assert records[0]["intervals"] == len(intervals) == len(offline.times_s)
    assert [record["time_s"] for record in intervals] == offline.times_s
    for label in offline.labels():
        streamed_power = [
            record["schemes"][label]["power_percent"] for record in intervals
        ]
        assert streamed_power == offline.power_percent[label]
        utilisation = offline.max_utilisation.get(label)
        if utilisation:
            streamed_util = [
                record["schemes"][label]["max_utilisation"] for record in intervals
            ]
            assert streamed_util == utilisation
            streamed_violations = [
                record["schemes"][label]["violation"] for record in intervals
            ]
            assert streamed_violations == offline.violations[label]
    # The closing record is the full offline result, wall-clock fields aside.
    assert canonical_result_dict(records[-1]["result"]) == canonical_result_dict(
        offline.to_dict()
    )


def test_replay_stream_bit_identical_to_offline_run(tmp_path):
    offline = run_scenario(base_scenario())
    with service(tmp_path) as server:
        records = stream_replay(server, base_scenario())
        assert_stream_matches_offline(records, offline)
        # The GET form (?spec=<url-encoded JSON>) streams the same records,
        # modulo per-step wall-clock timings.
        def strip(records):
            stripped = []
            for record in records:
                entry = json.loads(json.dumps(record))
                if entry["type"] == "interval":
                    for scheme in entry["schemes"].values():
                        scheme.pop("compute_seconds", None)
                entry.get("result", {}).pop("compute_seconds", None)
                entry.get("result", {}).pop("reaction", None)
                stripped.append(entry)
            return stripped

        assert strip(stream_replay(server, base_scenario(), via_get=True)) == strip(
            records
        )


def test_replay_stream_marks_events_on_their_interval(tmp_path):
    spec = eventful_scenario()
    offline = run_scenario(spec)
    with service(tmp_path) as server:
        records = stream_replay(server, spec)
    assert_stream_matches_offline(records, offline)
    intervals = [record for record in records if record["type"] == "interval"]
    fired = [
        (record["index"], event["kind"])
        for record in intervals
        for event in record["events"]
    ]
    # The offline engine reports the same single firing.
    assert fired == [
        (event_record["interval_index"], event_record["kind"])
        for event_record in offline.reaction["response"]
    ]
    assert fired[0][1] == "link-failure"


def test_replay_invalid_spec_is_a_clean_400(tmp_path):
    with service(tmp_path) as server:
        code, error = request_error(
            server, "/scenarios/replay", {"spec": {"name": "broken"}}
        )
        assert (code, error["code"]) == (400, "invalid-scenario")
        # GET without a spec parameter is a 400, not a hung stream.
        code, error = request_error(server, "/scenarios/replay")
        assert code == 400


# --------------------------------------------------------------------- #
# Campaigns over HTTP: submit, poll, paginate, report
# --------------------------------------------------------------------- #
def test_campaign_lifecycle_matches_offline_serial_run(tmp_path):
    with service(tmp_path) as server:
        status, submitted = post_json(
            server, "/campaigns", {"spec": campaign_dict(), "workers": 2}
        )
        assert status == 202
        assert submitted["grid_size"] == 4
        assert submitted["job"]["workers"] == 2
        campaign_id = submitted["campaign_id"]

        final = wait_for_job(server, campaign_id)
        assert final["job"]["state"] == "done"
        assert final["counts"] == {"done": 4, "error": 0, "pending": 0, "total": 4}
        assert final["leases"] == []  # nothing held once the drain is over

        # Pagination is SQL-side: a one-row page of done points.
        _, page = get_json(
            server, f"/campaigns/{campaign_id[:12]}/points?status=done&limit=1&offset=2"
        )
        assert page["count"] == 1
        assert page["points"][0]["point_index"] == 2
        assert page["counts"]["done"] == 4
        _, empty = get_json(
            server, f"/campaigns/{campaign_id[:12]}/points?status=error"
        )
        assert empty["count"] == 0

        # The report endpoint runs the campaign-report pipeline.
        _, report = get_json(
            server,
            f"/campaigns/{campaign_id[:12]}/report"
            "?metric=mean_power_percent&group_by=scheme&filter=scheme%3Dresponse",
        )
        assert report["filters"] == {"scheme": "response"}
        assert [row["scheme"] for row in report["summary"]] == ["response"]
        assert report["dominance"]["points"] == 4

        _, listing = get_json(server, "/campaigns")
        assert [row["campaign_id"] for row in listing["campaigns"]] == [campaign_id]
        assert listing["campaigns"][0]["job"]["state"] == "done"

        # The store the service's thread-workers produced is bit-identical
        # to a clean offline serial run of the same grid.
        serial_path = tmp_path / "serial.sqlite"
        run_campaign(CampaignSpec.from_dict(campaign_dict()), store_path=serial_path)
        with CampaignStore(server.config.store, read_only=True) as serviced:
            with CampaignStore(serial_path, read_only=True) as serial:
                assert serviced.canonical_dump(campaign_id) == serial.canonical_dump(
                    campaign_id
                )


def test_campaign_query_validation(tmp_path):
    with service(tmp_path) as server:
        _, submitted = post_json(
            server, "/campaigns", {"spec": campaign_dict(), "max_points": 0}
        )
        campaign_id = submitted["campaign_id"]
        wait_for_job(server, campaign_id)
        prefix = f"/campaigns/{campaign_id[:12]}"
        code, error = request_error(server, f"{prefix}/points?status=bogus")
        assert code == 400
        code, error = request_error(server, f"{prefix}/points?limit=-1")
        assert code == 400
        code, error = request_error(server, f"{prefix}/points?offset=x")
        assert code == 400
        code, error = request_error(server, f"{prefix}/report?filter=notakv")
        assert (code, error["code"]) == (400, "invalid-filter")
        code, error = request_error(server, "/campaigns/zzz/status")
        assert (code, error["code"]) == (404, "unknown-campaign")


def test_default_workers_config_applies_to_submissions(tmp_path):
    with service(tmp_path, default_workers=2) as server:
        _, submitted = post_json(
            server, "/campaigns", {"spec": campaign_dict(), "max_points": 0}
        )
        assert submitted["job"]["workers"] == 2
        wait_for_job(server, submitted["campaign_id"])
        # An explicit choice always wins over the config default.
        _, explicit = post_json(
            server,
            "/campaigns",
            {"spec": campaign_dict("svc-grid-b"), "workers": 1, "max_points": 0},
        )
        assert explicit["job"]["workers"] == 1


def test_concurrent_readers_during_active_drain(tmp_path):
    """Status/points/report polling never errors while workers write."""
    with service(tmp_path) as server:
        _, submitted = post_json(
            server, "/campaigns", {"spec": campaign_dict(), "workers": 2}
        )
        campaign_id = submitted["campaign_id"]
        errors = []
        stop = threading.Event()

        def poll(path):
            while not stop.is_set():
                try:
                    status, _ = get_json(server, path)
                    assert status == 200
                except Exception as error:  # noqa: BLE001 - collected for assert
                    errors.append(repr(error))
                    return

        prefix = f"/campaigns/{campaign_id[:12]}"
        readers = [
            threading.Thread(target=poll, args=(path,), daemon=True)
            for path in (
                f"{prefix}/status",
                f"{prefix}/points?status=done",
                f"{prefix}/report",
                "/campaigns",
            )
        ]
        for reader in readers:
            reader.start()
        final = wait_for_job(server, campaign_id)
        stop.set()
        for reader in readers:
            reader.join(timeout=30)
        assert errors == []
        assert final["job"]["state"] == "done"
        assert final["counts"]["done"] == 4


# --------------------------------------------------------------------- #
# Job manager and schema validation (no HTTP)
# --------------------------------------------------------------------- #
def test_job_manager_refuses_resubmitting_a_running_campaign(tmp_path):
    spec = CampaignSpec.from_dict(campaign_dict())
    manager = JobManager(tmp_path / "store.sqlite")
    # Simulate a drain in flight: the submit path must refuse a duplicate
    # rather than race two fleets' error-reset phases.
    campaign_id = spec.campaign_id()
    manager._jobs[campaign_id] = CampaignJob(
        campaign_id=campaign_id, name=spec.name, workers=1, batch=False, state=RUNNING
    )
    with pytest.raises(ServiceError) as excinfo:
        manager.submit(campaign_request({"spec": campaign_dict()}))
    assert excinfo.value.status == 409


def test_campaign_request_validation():
    assert campaign_request(campaign_dict()).workers == 1  # bare-spec form
    wrapped = campaign_request(
        {"spec": campaign_dict(), "workers": 3, "batch": True, "max_points": 2}
    )
    assert (wrapped.workers, wrapped.batch, wrapped.max_points) == (3, True, 2)
    for broken in (
        {"spec": campaign_dict(), "workers": 0},
        {"spec": campaign_dict(), "workers": True},
        {"spec": campaign_dict(), "batch": "yes"},
        {"spec": campaign_dict(), "max_points": -1},
        {"spec": campaign_dict(), "chunk_size": 0},
        {"spec": campaign_dict(), "lease_seconds": 0},
        {"spec": campaign_dict(), "typo_option": 1},
        {"spec": {"no": "base"}},
    ):
        with pytest.raises(ServiceError):
            campaign_request(broken)


def test_scenario_and_query_validators():
    spec = scenario_spec_from_request({"spec": base_scenario()})
    assert spec.name == "svc-scenario"
    assert scenario_spec_from_request(base_scenario()).name == "svc-scenario"
    with pytest.raises(ServiceError):
        scenario_spec_from_request({"spec": []})
    schemeless = base_scenario()
    schemeless["schemes"] = []
    with pytest.raises(ServiceError):
        scenario_spec_from_request(schemeless)

    page = points_query({"status": ["done"], "limit": ["5"], "offset": ["10"]})
    assert (page.status, page.limit, page.offset) == ("done", 5, 10)
    assert points_query({}) == points_query({"offset": ["0"]})
    with pytest.raises(ServiceError):
        points_query({"status": ["nope"]})

    report = report_query(
        {"group_by": ["scheme,seed"], "filter": ["scheme=response"]}
    )
    assert report.group_by == ("scheme", "seed")
    assert report.filters == {"scheme": "response"}
    assert report_query({}).group_by == ("scheme",)


def test_service_state_without_store_raises_404(tmp_path):
    state = ServiceState(str(tmp_path / "missing.sqlite"))
    with pytest.raises(ServiceError) as excinfo:
        state.open_reader()
    assert excinfo.value.status == 404


# --------------------------------------------------------------------- #
# CLI wiring
# --------------------------------------------------------------------- #
def test_serve_cli_rejects_bad_arguments():
    from repro.experiments.runner import main

    with pytest.raises(SystemExit):
        main(["serve", "--port", "70000"])
    with pytest.raises(SystemExit):
        main(["serve", "--workers", "0"])
