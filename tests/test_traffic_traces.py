"""Tests for traffic traces and the synthetic workload generators."""

import numpy as np
import pytest

from repro.exceptions import TrafficError
from repro.traffic import (
    TrafficMatrix,
    TrafficTrace,
    diurnal_factor,
    fattree_sine_pairs,
    generate_geant_trace,
    google_trace,
    google_volume_series,
    gravity_fractions,
    gravity_matrix,
    node_weights,
    relative_changes,
    sine_fraction,
    sine_wave_trace,
    trace_time_labels,
    weekly_factor,
)
from repro.topology.fattree import pod_of
from repro.units import DAY


# --------------------------------------------------------------------- #
# TrafficTrace container
# --------------------------------------------------------------------- #
def _small_trace():
    matrices = [
        TrafficMatrix({("a", "b"): float(value)}, name=f"m{value}") for value in (1, 2, 3, 4)
    ]
    return TrafficTrace(matrices, interval_s=900.0)


def test_trace_basic_queries():
    trace = _small_trace()
    assert len(trace) == 4
    assert trace.duration_s == 3600.0
    assert trace.timestamps() == [0.0, 900.0, 1800.0, 2700.0]
    assert trace.total_series() == [1.0, 2.0, 3.0, 4.0]
    assert trace[2].demand("a", "b") == 3.0
    intervals = list(trace)
    assert intervals[1].start_s == 900.0


def test_trace_matrix_at_clamps():
    trace = _small_trace()
    assert trace.matrix_at(-5.0).demand("a", "b") == 1.0
    assert trace.matrix_at(950.0).demand("a", "b") == 2.0
    assert trace.matrix_at(1e9).demand("a", "b") == 4.0


def test_trace_transformations():
    trace = _small_trace()
    assert trace.scaled(2.0).total_series() == [2.0, 4.0, 6.0, 8.0]
    sub = trace.subsampled(2)
    assert len(sub) == 2
    assert sub.interval_s == 1800.0
    sliced = trace.sliced(1, 3)
    assert sliced.total_series() == [2.0, 3.0]
    assert sliced.start_s == 900.0
    mapped = trace.mapped(lambda m: m.scaled(0.0))
    assert mapped.total_series() == [0.0, 0.0, 0.0, 0.0]


def test_trace_peak_and_offpeak():
    trace = _small_trace()
    assert trace.peak_matrix().demand("a", "b") == 4.0
    assert trace.offpeak_matrix(0.0).demand("a", "b") == 1.0


def test_trace_validation_errors():
    with pytest.raises(TrafficError):
        TrafficTrace([], interval_s=900.0)
    with pytest.raises(TrafficError):
        TrafficTrace([TrafficMatrix.zero()], interval_s=0.0)
    with pytest.raises(TrafficError):
        _small_trace().subsampled(0)
    with pytest.raises(TrafficError):
        _small_trace().sliced(4, 4)


# --------------------------------------------------------------------- #
# Gravity model
# --------------------------------------------------------------------- #
def test_gravity_matrix_totals_and_proportions(geant):
    matrix = gravity_matrix(geant, total_traffic_bps=1e9)
    assert matrix.total_bps == pytest.approx(1e9, rel=1e-6)
    weights = node_weights(geant)
    # Bigger PoPs exchange more traffic: DE (hub) vs IL (spur).
    assert weights["DE"] > weights["IL"]
    assert matrix.demand("DE", "FR") > matrix.demand("IL", "LT")


def test_gravity_matrix_with_pair_subset(geant):
    pairs = [("DE", "FR"), ("UK", "NL")]
    matrix = gravity_matrix(geant, total_traffic_bps=100.0, pairs=pairs)
    assert set(matrix.pairs()) == set(pairs)
    assert matrix.total_bps == pytest.approx(100.0)


def test_gravity_fractions_sum_to_one(geant):
    fractions = gravity_fractions(geant)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_gravity_rejects_unknown_pair_endpoint(geant):
    with pytest.raises(TrafficError):
        gravity_matrix(geant, 1.0, pairs=[("DE", "nowhere")])


# --------------------------------------------------------------------- #
# Sine-wave datacenter workload
# --------------------------------------------------------------------- #
def test_sine_fraction_range_and_period():
    values = [sine_fraction(i, 10) for i in range(11)]
    assert min(values) >= 0.0
    assert max(values) <= 1.0
    assert values[0] == pytest.approx(0.0)
    assert values[5] == pytest.approx(1.0)
    assert values[10] == pytest.approx(0.0, abs=1e-9)


def test_far_pairs_are_bijective_and_cross_pod(fattree4):
    pairs = fattree_sine_pairs(fattree4, "far", seed=1)
    sources = [origin for origin, _ in pairs]
    destinations = [destination for _, destination in pairs]
    assert len(set(sources)) == len(sources)
    assert len(set(destinations)) == len(destinations)
    for origin, destination in pairs:
        assert pod_of(origin) != pod_of(destination)


def test_near_pairs_stay_in_pod(fattree4):
    pairs = fattree_sine_pairs(fattree4, "near", seed=1)
    for origin, destination in pairs:
        assert pod_of(origin) == pod_of(destination)
    with pytest.raises(TrafficError):
        fattree_sine_pairs(fattree4, "sideways")


def test_sine_wave_trace_shape(fattree4):
    trace = sine_wave_trace(fattree4, mode="far", num_intervals=11, seed=2)
    totals = trace.total_series()
    assert len(trace) == 11
    assert totals[5] == max(totals)
    assert totals[0] < totals[5]


# --------------------------------------------------------------------- #
# GÉANT-like trace
# --------------------------------------------------------------------- #
def test_geant_trace_geometry(geant):
    trace = generate_geant_trace(geant, num_days=1, num_pairs=40, seed=1)
    assert len(trace) == 96
    assert trace.interval_s == 900.0
    assert all(len(matrix) == 40 for matrix in trace.matrices())
    labels = trace_time_labels(trace)
    assert labels[0].startswith("May-25")


def test_geant_trace_is_deterministic(geant):
    first = generate_geant_trace(geant, num_days=1, num_pairs=20, seed=9)
    second = generate_geant_trace(geant, num_days=1, num_pairs=20, seed=9)
    assert first.total_series() == pytest.approx(second.total_series())


def test_geant_trace_diurnal_structure(geant):
    trace = generate_geant_trace(geant, num_days=1, num_pairs=40, seed=1)
    totals = np.array(trace.total_series())
    # Afternoon demand is clearly higher than night demand.
    night = totals[0:16].mean()      # 00:00 - 04:00
    afternoon = totals[52:68].mean() # 13:00 - 17:00
    assert afternoon > 1.5 * night


def test_geant_trace_accepts_explicit_pairs(geant):
    pairs = [("DE", "FR"), ("UK", "NL"), ("IT", "AT")]
    trace = generate_geant_trace(geant, num_days=1, pairs=pairs, seed=1)
    assert set(trace[0].pairs()) == set(pairs)


def test_diurnal_and_weekly_factors():
    assert diurnal_factor(14 * 3600) > diurnal_factor(4 * 3600)
    assert weekly_factor(0.0) == 1.0
    assert weekly_factor(5 * DAY) < 1.0


# --------------------------------------------------------------------- #
# Google-like datacenter trace
# --------------------------------------------------------------------- #
def test_google_volume_series_change_statistics():
    series = google_volume_series(num_days=4, seed=25)
    changes = relative_changes(series)
    fraction_over_20 = float(np.mean(changes >= 0.2))
    # Paper: "in almost 50% cases the traffic changes at least by 20%".
    assert 0.35 <= fraction_over_20 <= 0.70
    assert series.max() > 0
    assert (series > 0).all()


def test_google_volume_series_deterministic():
    first = google_volume_series(num_days=1, seed=3)
    second = google_volume_series(num_days=1, seed=3)
    assert np.allclose(first, second)


def test_google_trace_distributes_volume():
    pairs = [("h0", "h1"), ("h2", "h3"), ("h4", "h5")]
    trace = google_trace(pairs, num_days=1, seed=4)
    assert len(trace) == 288
    for matrix in trace.matrices()[:10]:
        assert set(matrix.pairs()) == set(pairs)
        assert matrix.total_bps > 0
    with pytest.raises(TrafficError):
        google_trace([], num_days=1)


def test_relative_changes_requires_two_points():
    with pytest.raises(TrafficError):
        relative_changes([1.0])
