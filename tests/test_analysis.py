"""Tests for the trace analyses and evaluation metrics."""

import pytest

from repro.analysis import (
    change_ccdf,
    configuration_changes,
    configuration_dominance,
    fraction_changing_at_least,
    hop_count_distribution,
    latency_stretch,
    median_change,
    percentile_summary,
    power_percent_of_original,
    recomputation_rate,
    savings_percent,
)
from repro.exceptions import TrafficError
from repro.routing import RoutingConfiguration, RoutingTable


# --------------------------------------------------------------------- #
# Deviation (Figure 1a machinery)
# --------------------------------------------------------------------- #
def test_change_ccdf_monotone_decreasing():
    series = [100, 120, 90, 200, 100, 100]
    points = change_ccdf(series, change_percentages=[0, 10, 50, 100])
    values = [value for _threshold, value in points]
    assert values == sorted(values, reverse=True)
    assert points[0][1] == pytest.approx(100.0)


def test_fraction_changing_at_least():
    series = [100, 130, 130, 65]  # +30%, 0%, -50%
    assert fraction_changing_at_least(series, 0.2) == pytest.approx(2 / 3)
    assert fraction_changing_at_least(series, 0.0) == pytest.approx(1.0)
    with pytest.raises(TrafficError):
        fraction_changing_at_least(series, -0.1)
    assert median_change(series) == pytest.approx(0.3)


# --------------------------------------------------------------------- #
# Recomputation rate (Figure 1b machinery)
# --------------------------------------------------------------------- #
def _configs(signature_values):
    configs = []
    for value in signature_values:
        configs.append(
            RoutingConfiguration(frozenset({f"n{value}"}), frozenset())
        )
    return configs


def test_configuration_changes():
    configs = _configs([1, 1, 2, 2, 3])
    assert configuration_changes(configs) == [False, True, False, True]
    assert configuration_changes(configs[:1]) == []


def test_recomputation_rate_bins_per_hour():
    # 15-minute intervals: 4 per hour; configuration changes every interval.
    configs = _configs(range(9))
    series = recomputation_rate(configs, interval_s=900.0)
    assert series.upper_bound_per_hour == pytest.approx(4.0)
    assert series.recomputations_per_hour[0] == pytest.approx(4.0)
    assert series.max_rate_per_hour == 4.0
    assert series.total_changes == 8
    assert series.change_fraction == pytest.approx(1.0)
    assert series.mean_rate_per_hour > 0
    with pytest.raises(TrafficError):
        recomputation_rate(configs, interval_s=0.0)


def test_recomputation_rate_stable_trace_is_zero():
    configs = _configs([1] * 8)
    series = recomputation_rate(configs, interval_s=900.0)
    assert series.total_changes == 0
    assert series.max_rate_per_hour == 0.0


# --------------------------------------------------------------------- #
# Dominance (Figure 2a machinery)
# --------------------------------------------------------------------- #
def test_configuration_dominance():
    configs = _configs([1, 1, 1, 2, 3])
    result = configuration_dominance(configs)
    assert result.num_configurations == 3
    assert result.dominant_fraction == pytest.approx(0.6)
    assert result.fractions[0] == pytest.approx(0.6)
    assert result.cumulative()[-1] == pytest.approx(1.0)
    assert result.configurations_for_coverage(0.7) == 2
    empty = configuration_dominance([])
    assert empty.num_configurations == 0


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
def test_power_percent_and_savings(diamond, cisco_model):
    percent = power_percent_of_original(
        diamond, cisco_model, ["a", "b", "d"], [("a", "b"), ("b", "d")]
    )
    assert 0 < percent < 100
    assert savings_percent(percent) == pytest.approx(100 - percent)


def test_latency_stretch(diamond):
    reference = RoutingTable({("a", "d"): ["a", "b", "d"]})
    candidate = RoutingTable({("a", "d"): ["a", "c", "d"]})
    stretch = latency_stretch(diamond, candidate, reference)
    assert stretch.mean_stretch == pytest.approx(2.0)
    assert stretch.max_stretch == pytest.approx(2.0)
    assert stretch.mean_increase_percent == pytest.approx(100.0)
    identity = latency_stretch(diamond, reference, reference)
    assert identity.mean_stretch == pytest.approx(1.0)


def test_hop_count_distribution():
    table = RoutingTable({("a", "d"): ["a", "b", "d"], ("d", "a"): ["d", "a"]})
    histogram = hop_count_distribution(table)
    assert histogram == {2: 1, 1: 1}


def test_percentile_summary():
    summary = percentile_summary([1.0, 2.0, 3.0, 4.0])
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0
    assert summary["median"] == pytest.approx(2.5)
    assert percentile_summary([])["mean"] == 0.0
