"""Tests for the activation planner and energy-critical path identification."""

import pytest

from repro.core import (
    ResponseConfig,
    activate_paths,
    build_response_plan,
    coverage_curve,
    paths_needed_for_coverage,
    rank_paths_by_traffic,
    replay_trace,
    routing_tables_from_critical_paths,
    select_energy_critical_paths,
)
from repro.exceptions import ConfigurationError, TrafficError
from repro.routing import RoutingTable
from repro.traffic import TrafficMatrix, TrafficTrace
from repro.units import mbps

PAIRS = [("A", "K"), ("C", "K")]


@pytest.fixture
def plan(click_topology, cisco_model):
    return build_response_plan(
        click_topology, cisco_model, pairs=PAIRS, config=ResponseConfig(num_paths=3)
    )


# --------------------------------------------------------------------- #
# Activation planner
# --------------------------------------------------------------------- #
def test_low_demand_stays_on_always_on(click_topology, cisco_model, plan):
    demands = TrafficMatrix({pair: mbps(1) for pair in PAIRS})
    result = activate_paths(click_topology, cisco_model, plan, demands)
    assert all(index == 0 for index in result.assignment.values())
    assert result.num_on_demand_pairs == 0
    assert result.active_nodes == plan.always_on.active_nodes
    assert result.power_percent < 100.0
    assert result.overloaded_pairs == []
    assert result.energy_savings_percent() == pytest.approx(100.0 - result.power_percent)


def test_high_demand_activates_on_demand(click_topology, cisco_model, plan):
    # Two 8 Mb/s flows cannot share the 10 Mb/s middle link within a 90% SLO.
    demands = TrafficMatrix({pair: mbps(8) for pair in PAIRS})
    result = activate_paths(
        click_topology, cisco_model, plan, demands, utilisation_threshold=0.9
    )
    assert result.num_on_demand_pairs >= 1
    assert result.max_utilisation <= 0.9 + 1e-9
    assert result.power_w > activate_paths(
        click_topology, cisco_model, plan, TrafficMatrix({pair: mbps(1) for pair in PAIRS})
    ).power_w


def test_power_is_monotone_in_demand(click_topology, cisco_model, plan):
    previous = 0.0
    for level in (1, 4, 8):
        demands = TrafficMatrix({pair: mbps(level) for pair in PAIRS})
        result = activate_paths(click_topology, cisco_model, plan, demands)
        assert result.power_w >= previous - 1e-9
        previous = result.power_w


def test_overload_recorded_but_traffic_still_placed(click_topology, cisco_model, plan):
    demands = TrafficMatrix({pair: mbps(25) for pair in PAIRS})
    result = activate_paths(click_topology, cisco_model, plan, demands)
    assert set(result.overloaded_pairs) <= set(PAIRS)
    assert len(result.assignment) == len(PAIRS)


def test_failed_link_pushes_traffic_to_failover(click_topology, cisco_model, plan):
    demands = TrafficMatrix({pair: mbps(2) for pair in PAIRS})
    result = activate_paths(
        click_topology,
        cisco_model,
        plan,
        demands,
        include_failover=True,
        failed_links={("E", "H")},
    )
    # No assigned path crosses the failed link.
    tables = plan.tables(include_failover=True)
    for pair, index in result.assignment.items():
        assert ("E", "H") not in set(tables[index].path(*pair).link_keys())
    assert ("E", "H") not in result.active_links


def test_activation_threshold_validation(click_topology, cisco_model, plan):
    with pytest.raises(ConfigurationError):
        activate_paths(
            click_topology,
            cisco_model,
            plan,
            TrafficMatrix.zero(),
            utilisation_threshold=0.0,
        )


def test_replay_trace_produces_one_result_per_matrix(click_topology, cisco_model, plan):
    matrices = [TrafficMatrix({pair: mbps(level) for pair in PAIRS}) for level in (1, 5, 9)]
    results = replay_trace(click_topology, cisco_model, plan, matrices)
    assert len(results) == 3
    assert results[0].power_w <= results[-1].power_w + 1e-9


# --------------------------------------------------------------------- #
# Energy-critical path identification
# --------------------------------------------------------------------- #
def _two_interval_trace():
    matrices = [
        TrafficMatrix({("A", "K"): mbps(9), ("C", "K"): mbps(1)}),
        TrafficMatrix({("A", "K"): mbps(1), ("C", "K"): mbps(1)}),
    ]
    return TrafficTrace(matrices, interval_s=900.0)


def _two_routings():
    first = RoutingTable(
        {("A", "K"): ["A", "E", "H", "K"], ("C", "K"): ["C", "E", "H", "K"]}
    )
    second = RoutingTable(
        {("A", "K"): ["A", "D", "G", "K"], ("C", "K"): ["C", "E", "H", "K"]}
    )
    return [first, second]


def test_rank_paths_by_traffic_orders_by_volume():
    ranked = rank_paths_by_traffic(_two_interval_trace(), _two_routings())
    top_for_a = ranked[("A", "K")][0]
    assert top_for_a.path.nodes == ("A", "E", "H", "K")
    assert top_for_a.intervals_used == 1
    assert len(ranked[("C", "K")]) == 1


def test_rank_paths_requires_matching_lengths():
    with pytest.raises(TrafficError):
        rank_paths_by_traffic(_two_interval_trace(), _two_routings()[:1])


def test_coverage_curve_monotone_and_bounded():
    ranked = rank_paths_by_traffic(_two_interval_trace(), _two_routings())
    curve = coverage_curve(ranked, max_paths=3)
    assert len(curve) == 3
    assert all(0.0 <= value <= 1.0 for value in curve)
    assert curve == sorted(curve)
    assert curve[-1] == pytest.approx(1.0)
    with pytest.raises(TrafficError):
        coverage_curve(ranked, max_paths=0)


def test_paths_needed_for_coverage():
    ranked = rank_paths_by_traffic(_two_interval_trace(), _two_routings())
    assert paths_needed_for_coverage(ranked, 0.99) == 2
    assert paths_needed_for_coverage(ranked, 0.5) == 1
    with pytest.raises(TrafficError):
        paths_needed_for_coverage(ranked, 1.5)


def test_select_critical_paths_and_tables():
    ranked = rank_paths_by_traffic(_two_interval_trace(), _two_routings())
    critical = select_energy_critical_paths(ranked, num_paths=2)
    assert len(critical[("A", "K")]) == 2
    assert len(critical[("C", "K")]) == 1
    tables = routing_tables_from_critical_paths(critical, num_tables=2)
    assert len(tables) == 2
    # Table 1 falls back to the only path for the C pair.
    assert tables[1].path("C", "K").nodes == tables[0].path("C", "K").nodes
    with pytest.raises(TrafficError):
        select_energy_critical_paths(ranked, num_paths=0)
