"""Smoke tests for the per-figure experiment drivers (small parameters).

These tests assert the qualitative claims of the paper (who wins, what the
shape looks like), not the absolute numbers: the substrate is synthetic.
"""

import pytest

from repro.experiments import (
    run_always_on_capacity,
    run_fig1a,
    run_fig1b,
    run_fig2a,
    run_fig2b,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8a,
    run_fig8b,
    run_fig9,
    run_stress_ablation,
    run_web_latency,
)


def test_fig1a_traffic_changes_frequently():
    result = run_fig1a(num_days=2)
    # Paper: almost 50% of intervals change by at least 20%.
    assert 0.3 <= result.fraction_at_least_20_percent <= 0.75
    ccdf = dict(result.ccdf_points)
    assert ccdf[0.0] == pytest.approx(100.0)
    assert ccdf[100.0] <= ccdf[20.0] <= ccdf[0.0]
    assert len(result.rows()) == len(result.ccdf_points)


def test_fig1b_recomputation_rate_reaches_trace_bound():
    result = run_fig1b(num_days=1, num_pairs=60, num_endpoints=14)
    assert result.series.upper_bound_per_hour == pytest.approx(4.0)
    assert 0.0 < result.max_rate_per_hour <= 4.0
    assert result.series.total_changes > 0
    assert len(result.rows()) == len(result.series.hour_start_s)


def test_fig2a_single_configuration_dominates():
    result = run_fig2a(num_days=1, num_pairs=60, num_endpoints=14)
    assert result.num_configurations > 1
    assert result.dominant_fraction >= 0.3
    assert result.rows()[0][1] == pytest.approx(result.dominant_fraction)


def test_fig2b_few_paths_cover_most_traffic():
    result = run_fig2b(geant_days=1, geant_pairs=60, fattree_days=1, max_paths=5)
    geant_curve = result.coverage["geant"]
    fattree_curve = result.coverage["fattree"]
    # Coverage curves are monotone and reach (almost) 1 by 5 paths.
    assert geant_curve == sorted(geant_curve)
    assert fattree_curve == sorted(fattree_curve)
    assert geant_curve[2] >= 0.95          # 3 paths cover nearly everything on GEANT
    assert geant_curve[1] >= 0.90          # 2 paths already cover most traffic
    assert result.paths_for_98_percent["geant"] <= 3
    # The fat-tree needs at least as many paths as the ISP network.
    assert result.paths_for_98_percent["fattree"] >= result.paths_for_98_percent["geant"]


def test_fig4_response_saves_energy_while_ecmp_does_not():
    result = run_fig4(num_intervals=6, include_elastictree=True)
    ecmp = result.power_percent["ecmp"]
    near = result.power_percent["response_near"]
    far = result.power_percent["response_far"]
    assert all(value >= 99.0 for value in ecmp)
    assert all(value < 95.0 for value in near)
    assert min(far) < 95.0
    # Localised (near) traffic allows at least as much savings as far traffic.
    assert sum(near) <= sum(far) + 1e-6
    assert result.mean_savings_percent("response_near") > 5.0
    # ElasticTree and REsPoNse are in the same ballpark (the paper's curves coincide).
    elastictree = result.power_percent["elastictree_near"]
    assert all(value < 99.0 for value in elastictree)


def test_fig5_savings_with_both_hardware_models():
    result = run_fig5(num_days=1, subsample=4)
    response = result.mean_savings_percent["response"]
    alternative = result.mean_savings_percent["response_alternative_hw"]
    assert result.mean_savings_percent["ospf"] == pytest.approx(0.0)
    # Paper: ~30% savings today, ~42% with the alternative hardware model.
    assert 20.0 <= response <= 50.0
    assert alternative > response
    assert result.recomputations_needed == 0
    assert len(result.rows()) == len(result.times_s)


@pytest.mark.slow
def test_fig6_energy_proportionality_across_load_levels():
    result = run_fig6(num_pairs=80, num_endpoints=22)
    for variant in ("response", "response-lat", "response-ospf"):
        series = result.power_percent[variant]
        # Power grows (or stays equal) with the load level.
        assert series[0] <= series[-1] + 1e-6
    # At low load REsPoNse saves a significant amount of energy.
    assert result.savings_at("response", 10.0) >= 15.0
    # The latency-bounded variant saves no more than plain REsPoNse at low load.
    assert result.savings_at("response-lat", 10.0) <= result.savings_at("response", 10.0) + 1e-6


def test_fig7_te_sleeps_links_and_recovers_from_failure():
    result = run_fig7()
    assert result.sleep_convergence_s is not None
    assert result.sleep_convergence_s <= 0.5          # paper: ~0.2 s (a few RTTs)
    assert result.restore_time_s is not None
    assert result.restore_time_s <= 0.3               # paper: ~0.11 s
    # Before the failure traffic is on the middle path, afterwards on upper/lower.
    middle = result.rates_mbps["middle"]
    upper = result.rates_mbps["upper"]
    lower = result.rates_mbps["lower"]
    assert max(middle) > 4.0
    assert max(upper) > 2.0 and max(lower) > 2.0
    assert middle[-1] == pytest.approx(0.0)


def test_fig8a_isp_rates_track_demand():
    result = run_fig8a(num_steps=4, utilisation_levels=(0.25, 0.5, 1.0, 0.75))
    assert len(result.times_s) == len(result.demand_bps) == len(result.sending_rate_bps)
    # In steady state (last samples of the run) the rate matches the demand.
    assert result.sending_rate_bps[-1] == pytest.approx(result.demand_bps[-1], rel=0.15)
    # Power stays well below 100 % of the original network.
    assert max(result.power_percent) < 90.0
    assert min(result.power_percent) > 0.0


def test_fig8b_fattree_wake_up_stall_visible():
    result = run_fig8b(num_steps=6)
    # The 5-second port wake-up shows up as a bounded demand/rate mismatch.
    assert 0.0 < result.wake_stall_s <= 15.0
    assert result.sending_rate_bps[-1] == pytest.approx(result.demand_bps[-1], rel=0.2)


def test_fig9_streaming_performance_marginally_affected():
    result = run_fig9()
    for label, streaming in result.scenarios.items():
        minimum, _median, maximum = streaming.delivery_percent_summary()
        assert maximum <= 100.0
        assert minimum >= 80.0
        assert streaming.playable_client_fraction >= 0.9
    # Block-latency change against InvCap stays small (paper: about +5%).
    for increase in result.block_latency_increase_percent.values():
        assert abs(increase) <= 25.0
    assert len(result.rows()) == 4


def test_web_latency_increase_is_marginal():
    result = run_web_latency()
    assert result.invcap.mean_latency_s > 0
    assert -20.0 <= result.latency_increase_percent <= 30.0
    assert len(result.rows()) == 2


def test_always_on_capacity_fraction_is_meaningful():
    result = run_always_on_capacity(num_pairs=80, num_endpoints=20)
    assert result.always_on_max_bps > 0
    assert result.ospf_max_bps > 0
    assert 0.2 <= result.capacity_fraction <= 1.0


@pytest.mark.slow
def test_stress_ablation_more_exclusion_does_not_hurt():
    result = run_stress_ablation(fractions=(0.0, 0.2), num_pairs=60, num_endpoints=14)
    assert len(result.rows()) == 2
    absorbed = dict(result.rows())
    # The paper's default (20% exclusion) absorbs the peak-hour demand.
    assert absorbed[0.2] >= 1.0
    assert result.best_fraction() in (0.0, 0.2)
