"""End-to-end integration tests across the whole pipeline.

These tests exercise the realistic flow a user of the library follows:
build a topology, generate traffic, compute a REsPoNse plan, replay demand
through the activation planner, drive the online controller in the
simulator, and check the headline properties the paper claims.
"""

import pytest

from repro.core import (
    ResponseConfig,
    ResponseTEController,
    TEConfig,
    activate_paths,
    build_response_plan,
)
from repro.power import (
    AlternativeHardwarePowerModel,
    CiscoRouterPowerModel,
    full_power,
)
from repro.routing import max_link_utilisation, ospf_invcap_routing
from repro.simulator import Flow, SimulatedNetwork, SimulationEngine, constant_demand
from repro.topology import build_geant
from repro.traffic import (
    generate_geant_trace,
    gravity_matrix,
    select_pairs_among_subset,
)


@pytest.fixture(scope="module")
def geant_setup():
    topology = build_geant()
    model = CiscoRouterPowerModel()
    pairs = select_pairs_among_subset(topology.routers(), 12, 40, seed=7)
    plan = build_response_plan(
        topology, model, pairs=pairs, config=ResponseConfig(num_paths=3, k=3)
    )
    return topology, model, pairs, plan


def test_plan_installs_three_paths_per_pair(geant_setup):
    topology, _model, pairs, plan = geant_setup
    assert plan.num_paths == 3
    for pair in pairs:
        paths = plan.paths_for(*pair)
        assert 1 <= len(paths) <= 3
        for path in paths:
            assert path.is_valid(topology)


def test_always_on_subset_uses_fewer_elements_than_ospf(geant_setup):
    topology, model, pairs, plan = geant_setup
    ospf = ospf_invcap_routing(topology, pairs=pairs)
    assert len(plan.always_on.active_links) <= len(ospf.used_links())
    assert plan.always_on.power_w < full_power(topology, model).total_w


def test_replay_is_energy_proportional_and_feasible(geant_setup):
    topology, model, pairs, plan = geant_setup
    base = gravity_matrix(topology, total_traffic_bps=1e9, pairs=pairs)
    results = []
    for scale in (0.5, 5.0, 30.0):
        demands = base.scaled(scale)
        result = activate_paths(topology, model, plan, demands)
        results.append(result)
        assert result.max_utilisation <= 1.0 + 1e-6 or result.overloaded_pairs
    # Power grows with offered load, and savings exist at low load.
    assert results[0].power_w <= results[-1].power_w + 1e-6
    assert results[0].power_percent < 100.0


def test_alternative_hardware_model_saves_more(geant_setup):
    topology, _model, pairs, _plan = geant_setup
    base = gravity_matrix(topology, total_traffic_bps=2e9, pairs=pairs)
    results = {}
    for label, model in (
        ("cisco", CiscoRouterPowerModel()),
        ("alternative", AlternativeHardwarePowerModel()),
    ):
        plan = build_response_plan(
            topology, model, pairs=pairs, config=ResponseConfig(num_paths=3, k=3)
        )
        results[label] = activate_paths(topology, model, plan, base)
    assert (
        results["alternative"].energy_savings_percent()
        > results["cisco"].energy_savings_percent()
    )


def test_trace_replay_needs_no_recomputation(geant_setup):
    topology, model, pairs, plan = geant_setup
    trace = generate_geant_trace(topology, num_days=1, pairs=pairs, seed=7).subsampled(8)
    overloaded_intervals = 0
    for interval in trace:
        result = activate_paths(topology, model, plan, interval.matrix)
        if result.overloaded_pairs:
            overloaded_intervals += 1
    # The single precomputed plan absorbs (nearly) the whole replay.
    assert overloaded_intervals <= len(trace) // 10


def test_online_controller_matches_planner_steady_state(geant_setup):
    topology, model, pairs, plan = geant_setup
    demands = gravity_matrix(topology, total_traffic_bps=2e9, pairs=pairs)
    network = SimulatedNetwork(topology, model, wake_delay_s=0.1)
    flows = [
        Flow(f"{origin}->{destination}", origin, destination, constant_demand(demands[pair]))
        for pair in pairs
        for origin, destination in [pair]
    ]
    controller = ResponseTEController(plan, TEConfig())
    engine = SimulationEngine(network, flows, controller, time_step_s=0.2)
    result = engine.run(duration_s=10.0)
    final = result.final_sample()
    # All demand is served and a meaningful share of the network sleeps.
    assert final.total_rate_bps == pytest.approx(final.total_demand_bps, rel=0.05)
    assert final.sleeping_links > 0
    assert final.power_percent < 100.0

    planner_result = activate_paths(topology, model, plan, demands)
    # The simulator's steady-state power is in the same ballpark as the
    # analytic planner's (both count always-on elements plus activated paths).
    assert final.power_percent == pytest.approx(planner_result.power_percent, abs=15.0)


def test_ospf_baseline_feasible_but_not_energy_proportional(geant_setup):
    topology, model, pairs, _plan = geant_setup
    demands = gravity_matrix(topology, total_traffic_bps=2e9, pairs=pairs)
    ospf = ospf_invcap_routing(topology, pairs=pairs)
    assert max_link_utilisation(topology, ospf, demands) <= 1.0
    # OSPF keeps every element it touches active regardless of load: the
    # element set is independent of the demand level.
    assert ospf.used_links() == ospf_invcap_routing(topology, pairs=pairs).used_links()
