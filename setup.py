"""Setuptools packaging for the REsPoNse reproduction.

The project is kept installable with a plain ``setup.py`` (no ``wheel`` /
``pyproject.toml`` machinery) so that editable installs keep working on
machines without build isolation (offline environments), where pip falls
back to the legacy ``setup.py develop`` code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro-response",
    version="0.2.0",
    description=(
        "Reproduction of 'Identifying and using energy-critical paths' "
        "(REsPoNse, CoNEXT 2011)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",
        "networkx",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
