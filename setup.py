"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs keep working on machines without the ``wheel``
package (offline environments), where pip falls back to the legacy
``setup.py develop`` code path.
"""

from setuptools import setup

setup()
