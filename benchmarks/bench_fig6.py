"""Figure 6 — power consumption across utilisation levels in the Genuity topology."""

from repro.experiments import FIG6_VARIANTS, run_fig6


def test_fig6_genuity_utilisation_sweep(benchmark, run_once, sweep_kwargs):
    result = run_once(run_fig6, **sweep_kwargs)
    for variant in FIG6_VARIANTS:
        levels = result.utilisation_levels
        for level, power in zip(levels, result.power_percent[variant], strict=True):
            benchmark.extra_info[f"{variant}_util{int(level)}_power_%"] = round(power, 1)
    # Paper: ~30% savings at low utilisation, savings shrink as load grows,
    # and every variant remains energy-proportional.
    assert result.savings_at("response", 10.0) >= 15.0
    for variant in ("response", "response-lat", "response-ospf"):
        series = result.power_percent[variant]
        assert series[0] <= series[-1] + 1e-6
    # REsPoNse-lat trades a little of the savings for the latency bound.
    assert result.savings_at("response-lat", 10.0) <= result.savings_at("response", 10.0) + 1e-6
