"""Benchmark-suite configuration.

Every benchmark regenerates one table/figure of the paper's evaluation via
the drivers in :mod:`repro.experiments`, records the headline numbers in
``extra_info`` (so they appear in the benchmark JSON/summary), and asserts
the qualitative claim of the corresponding figure.

The benchmarks are expensive end-to-end reproductions, not micro-benchmarks:
each one runs a single round (``run_once`` fixture).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
