"""Benchmark-suite configuration.

Every benchmark regenerates one table/figure of the paper's evaluation via
the drivers in :mod:`repro.experiments`, records the headline numbers in
``extra_info`` (so they appear in the benchmark JSON/summary), and asserts
the qualitative claim of the corresponding figure.

The benchmarks are expensive end-to-end reproductions, not micro-benchmarks:
each one runs a single round (``run_once`` fixture).
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


@pytest.fixture
def sweep_kwargs():
    """Sweep-runner settings for drivers that support fan-out and caching.

    Serial and uncached by default so that benchmark timings stay honest.
    Set ``REPRO_BENCH_PARALLEL=1`` to fan experiment points out over worker
    processes, and ``REPRO_BENCH_CACHE_DIR=<dir>`` to reuse per-point
    results across benchmark runs (see :mod:`repro.experiments.runner`).
    """
    kwargs = {}
    if os.environ.get("REPRO_BENCH_PARALLEL"):
        kwargs["parallel"] = True
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if cache_dir:
        kwargs["cache_dir"] = cache_dir
    return kwargs
