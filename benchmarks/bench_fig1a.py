"""Figure 1a — CCDF of 5-minute traffic change in the Google-like datacenter trace."""



from repro.experiments import run_fig1a


def test_fig1a_traffic_deviation(benchmark, run_once):
    result = run_once(run_fig1a)
    benchmark.extra_info["fraction_changing_>=20%"] = round(
        result.fraction_at_least_20_percent, 3
    )
    benchmark.extra_info["median_change_percent"] = round(result.median_change_percent, 1)
    rows = dict(result.rows())
    benchmark.extra_info["ccdf_at_20%"] = round(rows[20.0], 1)
    benchmark.extra_info["ccdf_at_50%"] = round(rows[50.0], 1)
    # Paper: "in almost 50% cases the traffic changes at least by 20%".
    assert 0.3 <= result.fraction_at_least_20_percent <= 0.75
