"""Multi-worker campaign drains — points/s scaling and serial identity.

Runs the same 24-point grid as ``bench_campaign.py`` (GÉANT × calibrated
gravity × REsPoNse/GreenTE/ECMP over seeds, pair counts, demand totals and
the utilisation SLO) through the lease-based worker protocol at three
fleet sizes:

* **serial** — the plain single-process baseline (no leases),
* **1 worker** — the lease protocol's overhead floor, and
* **2 and 4 workers** — cooperating processes draining one shared store.

Every drain must finish the grid with zero lock errors and produce a
``canonical_dump`` bit-identical to the serial store — the concurrency
machinery may never change the science.  Points/s per fleet size lands in
``BENCH_campaign_workers.json``.

The scaling gate (4 workers ≥ 1.5× one worker) only applies on multi-core
machines and can be relaxed with
``CAMPAIGN_WORKERS_BENCH_SKIP_SPEEDUP_GATE=1`` (shared CI runners); the
identity and zero-failure assertions always hold.

Also runnable standalone (writes the baseline JSON):

    PYTHONPATH=src python benchmarks/bench_campaign_workers.py
"""

from __future__ import annotations

import json
import os
import tempfile
from multiprocessing import cpu_count
from pathlib import Path
from typing import Any, Dict

from repro.campaign import CampaignSpec, CampaignStore, run_campaign, run_campaign_workers

#: Four workers must beat one by this factor (multi-core machines only).
SPEEDUP_FLOOR = 1.5

#: Fleet sizes measured against the single-worker baseline.
FLEET_SIZES = (1, 2, 4)

BASELINE_PATH = Path(__file__).parent / "BENCH_campaign_workers.json"


def campaign_spec() -> CampaignSpec:
    """The 24-point grid: 3 seeds x 2 pair counts x 2 totals x 2 SLOs."""
    return CampaignSpec.from_dict(
        {
            "name": "bench-worker-grid",
            "base": {
                "topology": "geant",
                "traffic": {
                    "name": "gravity",
                    "params": {
                        "num_endpoints": 8,
                        "calibrate": True,
                        "levels": [0.25, 0.5, 1.0],
                    },
                },
                "power": "cisco",
                "schemes": [
                    {"name": "response", "params": {"num_paths": 3, "k": 3}},
                    {"name": "greente", "params": {}},
                    {"name": "ecmp", "params": {}},
                ],
            },
            "axes": {
                "seed": [0, 1, 2],
                "set": {
                    "traffic.num_pairs": [8, 12],
                    "traffic.total_traffic_bps": [1e9, 2e9],
                    "scenario.utilisation_threshold": [0.85, 0.9],
                },
            },
        }
    )


def measure() -> Dict[str, Any]:
    """Serial baseline plus 1/2/4-worker drains of fresh shared stores."""
    spec = campaign_spec()
    grid_size = spec.grid_size()
    results: Dict[str, Any] = {"grid_points": float(grid_size), "cpus": float(cpu_count())}
    with tempfile.TemporaryDirectory() as workdir:
        serial_store = os.path.join(workdir, "serial.sqlite")
        serial = run_campaign(spec, store_path=serial_store)
        with CampaignStore(serial_store, read_only=True) as store:
            serial_dump = store.canonical_dump(serial.campaign_id)
        results["serial_s"] = serial.elapsed_s
        results["points_per_s_serial"] = serial.points_per_second
        results["serial_failed"] = float(serial.failed)

        for workers in FLEET_SIZES:
            store_path = os.path.join(workdir, f"workers{workers}.sqlite")
            fleet = run_campaign_workers(spec, store_path=store_path, workers=workers)
            with CampaignStore(store_path, read_only=True) as store:
                dump = store.canonical_dump(fleet.campaign_id)
            results[f"workers{workers}_s"] = fleet.elapsed_s
            results[f"points_per_s_workers{workers}"] = fleet.points_per_second
            results[f"workers{workers}_failed"] = float(fleet.failed)
            results[f"workers{workers}_remaining"] = float(fleet.remaining)
            results[f"workers{workers}_store_identical"] = float(dump == serial_dump)

    one = results["points_per_s_workers1"]
    results["scaling_2_workers"] = results["points_per_s_workers2"] / one if one else 0.0
    results["scaling_4_workers"] = results["points_per_s_workers4"] / one if one else 0.0
    return results


def _check(results: Dict[str, Any]) -> None:
    """The always-on invariants of a healthy multi-worker drain."""
    assert results["serial_failed"] == 0.0
    for workers in FLEET_SIZES:
        assert results[f"workers{workers}_failed"] == 0.0
        assert results[f"workers{workers}_remaining"] == 0.0
        assert results[f"workers{workers}_store_identical"] == 1.0


def _gate_speedup(results: Dict[str, Any]) -> bool:
    """Whether the 4-worker scaling floor applies in this environment."""
    if os.environ.get("CAMPAIGN_WORKERS_BENCH_SKIP_SPEEDUP_GATE"):
        return False
    return results["cpus"] > 1


def test_campaign_worker_scaling_and_identity(benchmark, run_once):
    results = run_once(measure)
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 4)
    _check(results)
    if _gate_speedup(results):
        assert results["scaling_4_workers"] >= SPEEDUP_FLOOR, (
            f"4 workers only {results['scaling_4_workers']:.2f}x one worker "
            f"on {int(results['cpus'])} CPUs (floor: {SPEEDUP_FLOOR}x)"
        )


if __name__ == "__main__":
    outcome = measure()
    BASELINE_PATH.write_text(json.dumps(outcome, indent=2, sort_keys=True) + "\n")
    for key, value in outcome.items():
        print(f"{key}: {value:.4f}")
    _check(outcome)
    if _gate_speedup(outcome) and outcome["scaling_4_workers"] < SPEEDUP_FLOOR:
        print(f"FAIL: 4-worker scaling below {SPEEDUP_FLOOR}x")
        raise SystemExit(1)
    print(
        f"OK: {int(outcome['grid_points'])}-point grid at "
        f"{outcome['points_per_s_workers1']:.2f} points/s with 1 worker, "
        f"{outcome['points_per_s_workers4']:.2f} points/s with 4 "
        f"({outcome['scaling_4_workers']:.2f}x); every drain bit-identical "
        f"to the serial store; baseline written to {BASELINE_PATH.name}"
    )
