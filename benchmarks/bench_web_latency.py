"""Section 5.4 (text) — web retrieval latency over REsPoNse paths versus OSPF-InvCap."""

from repro.experiments import run_web_latency


def test_web_latency_over_response_paths(benchmark, run_once):
    result = run_once(run_web_latency)
    benchmark.extra_info["response_mean_latency_ms"] = round(
        result.response.mean_latency_s * 1e3, 2
    )
    benchmark.extra_info["invcap_mean_latency_ms"] = round(result.invcap.mean_latency_s * 1e3, 2)
    benchmark.extra_info["latency_increase_%"] = round(result.latency_increase_percent, 1)
    # Paper: the web retrieval latency increases by only ~9% when switching
    # from OSPF-InvCap to REsPoNse — i.e. the impact is marginal.
    assert result.invcap.mean_latency_s > 0
    assert -20.0 <= result.latency_increase_percent <= 30.0
