"""Timeline engine — incremental scheme runtimes vs cold-start replay.

The timeline engine keeps per-scheme state alive across intervals: GreenTE's
candidate k-shortest paths are computed once per surviving topology, and the
REsPoNse plan is built once and only re-activated.  This benchmark measures
that against the cold-start replay the engine replaced — rebuilding the
solver/plan state from scratch at every interval — on the two paper stacks:

* GEANT x synthetic GEANT trace x GreenTE (candidate reuse), and
* fat-tree x sine-wave trace x REsPoNse (plan built once vs per interval),

asserting bit-identical power series and an incremental speedup, and timing
an eventful GEANT replay (mid-trace link failure) to record the
recomputation-latency proxy baseline in ``BENCH_timeline.json``.

Also runnable standalone (writes the baseline JSON):

    PYTHONPATH=src python benchmarks/bench_timeline_events.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict

from repro.core.planner import activate_paths
from repro.core.response import ResponseConfig, build_response_plan
from repro.scenario import (
    EventSpec,
    PowerSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
    run_built_scenario,
)
from repro.scenario.schemes import CachedCandidatePaths, greente_replay

#: The incremental timeline must beat cold-start by at least this factor.
SPEEDUP_FLOOR = 1.5

BASELINE_PATH = Path(__file__).parent / "BENCH_timeline.json"


def geant_spec(**overrides: Any) -> ScenarioSpec:
    settings: Dict[str, Any] = dict(
        name="timeline-geant",
        topology=TopologySpec("geant"),
        traffic=TrafficSpec(
            "geant-trace", num_days=1, num_pairs=110, num_endpoints=16, subsample=4
        ),
        power=PowerSpec("cisco"),
        schemes=(SchemeSpec("greente"),),
    )
    settings.update(overrides)
    return ScenarioSpec(**settings)


def fattree_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="timeline-fattree",
        topology=TopologySpec("fattree", k=4),
        traffic=TrafficSpec("sinewave", mode="far", num_intervals=12, seed=4),
        power=PowerSpec("commodity", ports_at_peak=4),
        schemes=(SchemeSpec("response", num_paths=3, k=4),),
    )


def measure_geant_greente() -> Dict[str, float]:
    """Incremental (shared candidate cache) vs cold-start GreenTE replay."""
    built = build_scenario(geant_spec())

    start = time.perf_counter()
    result = run_built_scenario(built)
    incremental_s = time.perf_counter() - start
    incremental = result.power_percent["greente"]

    # Cold start: a fresh candidate cache per interval, exactly what the
    # pre-timeline loop paid when solver state was rebuilt from scratch.
    start = time.perf_counter()
    cold = []
    for matrix in built.trace.matrices():
        solution = greente_replay(
            built.topology,
            built.power_model,
            [matrix],
            k=5,
            pairs=built.pairs,
            ordering="stable",
            candidates=CachedCandidatePaths(5),
        )[0]
        cold.append(100.0 * solution.power_w / built.baseline_power_w)
    cold_s = time.perf_counter() - start

    return {
        "intervals": float(len(built.trace)),
        "incremental_s": incremental_s,
        "cold_start_s": cold_s,
        "speedup": cold_s / incremental_s,
        "series_identical": float(incremental == cold),
    }


def measure_fattree_response() -> Dict[str, float]:
    """REsPoNse plan built once (timeline) vs rebuilt per interval."""
    built = build_scenario(fattree_spec())
    config = ResponseConfig(num_paths=3, k=4)
    threshold = built.spec.utilisation_threshold

    start = time.perf_counter()
    result = run_built_scenario(built)
    incremental_s = time.perf_counter() - start
    incremental = result.power_percent["response"]

    start = time.perf_counter()
    cold = []
    for matrix in built.trace.matrices():
        plan = build_response_plan(
            built.topology, built.power_model, pairs=built.pairs, config=config
        )
        activation = activate_paths(
            built.topology,
            built.power_model,
            plan,
            matrix,
            utilisation_threshold=threshold,
        )
        cold.append(activation.power_percent)
    cold_s = time.perf_counter() - start

    return {
        "intervals": float(len(built.trace)),
        "incremental_s": incremental_s,
        "cold_start_s": cold_s,
        "speedup": cold_s / incremental_s,
        "series_identical": float(incremental == cold),
    }


def measure_geant_failure_reaction() -> Dict[str, float]:
    """Recomputation-latency proxy of an eventful GEANT replay."""
    spec = geant_spec(
        name="timeline-geant-failure",
        schemes=(SchemeSpec("response", num_paths=3, k=3), SchemeSpec("greente")),
        events=(
            EventSpec("link-failure", time_s=6 * 3600.0, link=["DE", "FR"]),
        ),
    )
    result = run_built_scenario(build_scenario(spec))
    response_reaction = result.reaction["response"][0]
    greente_reaction = result.reaction["greente"][0]
    return {
        "intervals": float(len(result.times_s)),
        "response_mean_step_s": sum(result.compute_seconds["response"])
        / len(result.times_s),
        "greente_mean_step_s": sum(result.compute_seconds["greente"])
        / len(result.times_s),
        "response_reaction_s": response_reaction["compute_seconds"],
        "greente_reaction_s": greente_reaction["compute_seconds"],
        "response_post_failure_power_percent": response_reaction["power_percent"],
        "greente_recomputations": float(result.recomputations["greente"]),
    }


def measure() -> Dict[str, Dict[str, float]]:
    """All three sections of the baseline."""
    return {
        "geant_greente": measure_geant_greente(),
        "fattree_response": measure_fattree_response(),
        "geant_failure_reaction": measure_geant_failure_reaction(),
    }


def test_timeline_incremental_beats_cold_start_on_geant(benchmark, run_once):
    results = run_once(measure_geant_greente)
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 4)
    assert results["series_identical"] == 1.0  # warm state never changes results
    assert results["speedup"] >= SPEEDUP_FLOOR, (
        f"incremental timeline only {results['speedup']:.2f}x faster than "
        f"cold-start on GEANT (floor: {SPEEDUP_FLOOR}x)"
    )


def test_timeline_incremental_beats_cold_start_on_fattree(benchmark, run_once):
    results = run_once(measure_fattree_response)
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 4)
    assert results["series_identical"] == 1.0
    assert results["speedup"] >= SPEEDUP_FLOOR, (
        f"incremental timeline only {results['speedup']:.2f}x faster than "
        f"cold-start on the fat-tree (floor: {SPEEDUP_FLOOR}x)"
    )


def test_timeline_failure_reaction_metrics(benchmark, run_once):
    results = run_once(measure_geant_failure_reaction)
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 6)
    # REsPoNse reacts by activation only: its post-failure step must stay
    # cheap relative to a scheme that re-solves on the degraded topology.
    assert results["response_reaction_s"] < results["greente_reaction_s"]
    assert 0.0 < results["response_post_failure_power_percent"] <= 100.0


if __name__ == "__main__":
    import os

    outcome = measure()
    BASELINE_PATH.write_text(json.dumps(outcome, indent=2, sort_keys=True) + "\n")
    for section, values in outcome.items():
        print(f"{section}:")
        for key, value in values.items():
            print(f"  {key}: {value:.4f}")
    failed = False
    for section in ("geant_greente", "fattree_response"):
        if outcome[section]["series_identical"] != 1.0:
            print(f"FAIL: {section} series differ between incremental and cold")
            failed = True
    # Shared CI runners make wall-clock gates flaky; set
    # TIMELINE_BENCH_SKIP_SPEEDUP_GATE=1 to report timings without failing.
    if not os.environ.get("TIMELINE_BENCH_SKIP_SPEEDUP_GATE"):
        for section in ("geant_greente", "fattree_response"):
            if outcome[section]["speedup"] < SPEEDUP_FLOOR:
                print(f"FAIL: {section} speedup below {SPEEDUP_FLOOR}x")
                failed = True
    if failed:
        raise SystemExit(1)
    print(
        f"OK: incremental timeline {outcome['geant_greente']['speedup']:.1f}x "
        f"(GEANT/GreenTE) and {outcome['fattree_response']['speedup']:.1f}x "
        f"(fat-tree/REsPoNse) faster than cold-start; baseline written to "
        f"{BASELINE_PATH.name}"
    )
