"""Figure 4 — power versus time for sinusoidal traffic in a k=4 fat-tree datacenter."""



from repro.experiments import run_fig4


def test_fig4_datacenter_sine_wave(benchmark, run_once, sweep_kwargs):
    result = run_once(run_fig4, **sweep_kwargs)
    benchmark.extra_info["mean_savings_response_near_%"] = round(
        result.mean_savings_percent("response_near"), 1
    )
    benchmark.extra_info["mean_savings_response_far_%"] = round(
        result.mean_savings_percent("response_far"), 1
    )
    benchmark.extra_info["mean_savings_ecmp_%"] = round(result.mean_savings_percent("ecmp"), 1)
    benchmark.extra_info["peak_power_far_%"] = round(max(result.power_percent["response_far"]), 1)
    benchmark.extra_info["trough_power_near_%"] = round(
        min(result.power_percent["response_near"]), 1
    )
    # Paper: ECMP is flat at ~100%, REsPoNse tracks the sine wave and saves energy.
    assert all(value >= 99.0 for value in result.power_percent["ecmp"])
    assert result.mean_savings_percent("response_near") > 5.0
    assert min(result.power_percent["response_far"]) < 95.0
