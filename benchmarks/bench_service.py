"""Scenario-service load test — concurrent readers against a live drain.

Starts an in-process service on an ephemeral port, submits a 24-point
campaign for background draining, and hammers the status/points/report
endpoints from a pool of concurrent reader threads for the whole drain.
The bar, matching the service acceptance criteria:

* **zero read errors** — WAL read-only connections must never surface a
  ``database is locked`` (or any 5xx) to a client while the worker
  writes;
* the drained store stays ``canonical_dump``-**bit-identical** to an
  offline serial ``run_campaign`` of the same grid — serving HTTP
  traffic during the drain must not change the science;
* a streamed replay's per-interval power series equals the offline
  engine's, element by element.

Requests/s across the reader pool and the p50/p99 request latencies land
in ``BENCH_service.json``.  The throughput floor only applies on
multi-core machines and can be relaxed with
``SERVICE_BENCH_SKIP_THROUGHPUT_GATE=1`` (shared CI runners); the
zero-error and identity assertions always hold.

Also runnable standalone (writes the baseline JSON):

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import urllib.request
from multiprocessing import cpu_count
from pathlib import Path
from typing import Any, Dict, List

from repro.campaign import CampaignSpec, CampaignStore, run_campaign
from repro.scenario.engine import run_scenario
from repro.service.server import ServiceConfig, create_server

#: Reader threads polling while the drain writes.
READER_THREADS = 6

#: The reader pool must sustain at least this many requests/s overall
#: (multi-core machines only; see SERVICE_BENCH_SKIP_THROUGHPUT_GATE).
THROUGHPUT_FLOOR_RPS = 20.0

BASELINE_PATH = Path(__file__).parent / "BENCH_service.json"


def base_scenario() -> Dict[str, Any]:
    """A cheap uniform-traffic stack (mirrors the campaign test fixtures)."""
    return {
        "topology": "geant",
        "traffic": {
            "name": "uniform",
            "params": {"num_pairs": 6, "num_endpoints": 5, "flow_bps": 1e8, "seed": 0},
        },
        "power": "cisco",
        "schemes": [{"name": "response", "params": {"num_paths": 2, "k": 2}}, "ecmp"],
    }


def replay_scenario() -> Dict[str, Any]:
    """A multi-interval, eventful spec so the replay identity check has depth."""
    return {
        "name": "bench-service-replay",
        "topology": "geant",
        "traffic": {
            "name": "gravity",
            "params": {
                "num_pairs": 8,
                "num_endpoints": 5,
                "seed": 1,
                "calibrate": True,
                "levels": [0.25, 0.5, 1.0],
            },
        },
        "power": "cisco",
        "schemes": [{"name": "response", "params": {"num_paths": 2, "k": 2}}, "ecmp"],
        "events": [
            {
                "name": "link-failure",
                "params": {"time_s": 900.0, "link": ["DE", "FR"], "repair_s": 1800.0},
            }
        ],
        "utilisation_threshold": 0.9,
    }


def campaign_dict() -> Dict[str, Any]:
    """The 24-point grid the readers poll while it drains."""
    return {
        "name": "bench-service-grid",
        "base": base_scenario(),
        "axes": {
            "seed": [0, 1, 2, 3, 4, 5],
            "set": {
                "traffic.flow_bps": [1e8, 1.5e8],
                "scenario.utilisation_threshold": [0.85, 0.9],
            },
        },
    }


def _get(url: str) -> Dict[str, Any]:
    with urllib.request.urlopen(url, timeout=60) as response:
        if response.status != 200:
            raise RuntimeError(f"{url} -> HTTP {response.status}")
        return json.loads(response.read())


def _post(url: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST"
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        return json.loads(response.read())


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))]


def measure() -> Dict[str, Any]:
    """One full drain under concurrent read load, plus a streamed replay."""
    results: Dict[str, Any] = {"cpus": float(cpu_count()), "readers": float(READER_THREADS)}
    spec = CampaignSpec.from_dict(campaign_dict())
    results["grid_points"] = float(spec.grid_size())

    with tempfile.TemporaryDirectory() as workdir:
        store_path = os.path.join(workdir, "service.sqlite")
        server = create_server(
            ServiceConfig(host="127.0.0.1", port=0, store=store_path)
        )
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()
        base = server.url
        try:
            submitted = _post(
                base + "/campaigns", {"spec": campaign_dict(), "workers": 1}
            )
            campaign_id = submitted["campaign_id"]
            prefix = f"{base}/campaigns/{campaign_id[:12]}"

            errors: List[str] = []
            latencies: List[float] = []
            requests_done = [0]
            lock = threading.Lock()
            stop = threading.Event()
            paths = [
                f"{prefix}/status",
                f"{prefix}/points?status=done&limit=5",
                f"{prefix}/report",
                f"{base}/campaigns",
            ]

            def read_loop(index: int) -> None:
                while not stop.is_set():
                    url = paths[index % len(paths)]
                    started = time.perf_counter()
                    try:
                        _get(url)
                    except Exception as error:  # noqa: BLE001 - the bar is zero
                        with lock:
                            errors.append(f"{url}: {error!r}")
                        return
                    elapsed = time.perf_counter() - started
                    with lock:
                        latencies.append(elapsed)
                        requests_done[0] += 1

            drain_started = time.perf_counter()
            readers = [
                threading.Thread(target=read_loop, args=(index,), daemon=True)
                for index in range(READER_THREADS)
            ]
            for reader in readers:
                reader.start()
            while True:
                status = _get(f"{prefix}/status")
                if status.get("job", {}).get("state") != "running":
                    break
                time.sleep(0.05)
            drain_s = time.perf_counter() - drain_started
            stop.set()
            for reader in readers:
                reader.join(timeout=30)

            results["drain_s"] = drain_s
            results["drain_points_per_s"] = results["grid_points"] / drain_s
            results["read_errors"] = float(len(errors))
            results["read_requests"] = float(requests_done[0])
            results["read_requests_per_s"] = requests_done[0] / drain_s if drain_s else 0.0
            results["read_p50_ms"] = _percentile(latencies, 0.50) * 1e3
            results["read_p99_ms"] = _percentile(latencies, 0.99) * 1e3
            results["drain_state_done"] = float(
                status.get("job", {}).get("state") == "done"
            )
            results["points_done"] = float(status["counts"]["done"])
            if errors:
                results["first_error"] = 0.0  # keep numeric; details below
                print("READ ERRORS:")
                for entry in errors[:10]:
                    print(" ", entry)

            # Streamed replay vs the offline engine: bit-identity.
            replay_started = time.perf_counter()
            request = urllib.request.Request(
                base + "/scenarios/replay",
                data=json.dumps({"spec": replay_scenario()}).encode("utf-8"),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=600) as response:
                records = [json.loads(line) for line in response.read().splitlines()]
            results["replay_s"] = time.perf_counter() - replay_started
            intervals = [r for r in records if r["type"] == "interval"]
            offline = run_scenario(replay_scenario())
            streamed = {
                label: [r["schemes"][label]["power_percent"] for r in intervals]
                for label in offline.labels()
            }
            results["replay_intervals"] = float(len(intervals))
            results["replay_identical"] = float(
                streamed == offline.power_percent
                and records[-1]["result"]["power_percent"] == offline.power_percent
            )
        finally:
            server.shutdown()
            server.server_close()
            server_thread.join(timeout=10)

        # The serviced store matches a clean offline serial run, bit for bit.
        serial_path = os.path.join(workdir, "serial.sqlite")
        serial = run_campaign(spec, store_path=serial_path)
        with CampaignStore(store_path, read_only=True) as serviced_store:
            serviced_dump = serviced_store.canonical_dump(campaign_id)
        with CampaignStore(serial_path, read_only=True) as serial_store:
            serial_dump = serial_store.canonical_dump(serial.campaign_id)
        results["store_identical"] = float(serviced_dump == serial_dump)
    return results


def _check(results: Dict[str, Any]) -> None:
    """The always-on invariants of a healthy service under load."""
    assert results["read_errors"] == 0.0, "readers saw errors during the drain"
    assert results["drain_state_done"] == 1.0
    assert results["points_done"] == results["grid_points"]
    assert results["store_identical"] == 1.0
    assert results["replay_identical"] == 1.0
    assert results["read_requests"] > 0.0


def _gate_throughput(results: Dict[str, Any]) -> bool:
    """Whether the requests/s floor applies in this environment."""
    if os.environ.get("SERVICE_BENCH_SKIP_THROUGHPUT_GATE"):
        return False
    return results["cpus"] > 1


def test_service_concurrent_readers_and_replay(benchmark, run_once):
    results = run_once(measure)
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 4)
    _check(results)
    if _gate_throughput(results):
        assert results["read_requests_per_s"] >= THROUGHPUT_FLOOR_RPS, (
            f"reader pool sustained only {results['read_requests_per_s']:.1f} "
            f"requests/s (floor: {THROUGHPUT_FLOOR_RPS})"
        )


if __name__ == "__main__":
    outcome = measure()
    BASELINE_PATH.write_text(json.dumps(outcome, indent=2, sort_keys=True) + "\n")
    for key, value in outcome.items():
        print(f"{key}: {value:.4f}")
    _check(outcome)
    if _gate_throughput(outcome) and outcome["read_requests_per_s"] < THROUGHPUT_FLOOR_RPS:
        print(f"FAIL: below {THROUGHPUT_FLOOR_RPS} requests/s")
        raise SystemExit(1)
    print(
        f"OK: {int(outcome['read_requests'])} reads at "
        f"{outcome['read_requests_per_s']:.1f} requests/s "
        f"(p99 {outcome['read_p99_ms']:.1f} ms) with zero errors while the "
        f"{int(outcome['grid_points'])}-point grid drained in "
        f"{outcome['drain_s']:.2f}s; store and replay bit-identical; "
        f"baseline written to {BASELINE_PATH.name}"
    )
