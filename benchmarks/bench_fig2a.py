"""Figure 2a — routing-configuration dominance on the GÉANT replay."""



from repro.experiments import run_fig2a


def test_fig2a_configuration_dominance(benchmark, run_once):
    result = run_once(run_fig2a, num_days=3)
    benchmark.extra_info["dominant_configuration_fraction"] = round(result.dominant_fraction, 2)
    benchmark.extra_info["distinct_configurations"] = result.num_configurations
    benchmark.extra_info["configurations_for_95%_of_time"] = (
        result.dominance.configurations_for_coverage(0.95)
    )
    # Paper: one configuration dominates (~60% of the time) but many distinct
    # configurations appear overall — too many to pre-install.
    assert result.dominant_fraction >= 0.3
    assert result.num_configurations > 3
