"""Figure 9 — media-streaming application performance over REsPoNse-chosen paths."""

from repro.experiments import run_fig9


def test_fig9_streaming_over_response_paths(benchmark, run_once, sweep_kwargs):
    result = run_once(run_fig9, **sweep_kwargs)
    for label, minimum, median, maximum, playable in result.rows():
        benchmark.extra_info[f"{label}_min_%"] = round(minimum, 1)
        benchmark.extra_info[f"{label}_median_%"] = round(median, 1)
        benchmark.extra_info[f"{label}_max_%"] = round(maximum, 1)
        benchmark.extra_info[f"{label}_playable_fraction"] = round(playable, 3)
    for count, increase in result.block_latency_increase_percent.items():
        benchmark.extra_info[f"block_latency_increase_{count}_clients_%"] = round(increase, 1)
    # Paper: energy-aware paths have marginal impact — nearly every client can
    # play the video at both population sizes, and block latency changes little.
    for _label, streaming in result.scenarios.items():
        assert streaming.playable_client_fraction >= 0.9
    for increase in result.block_latency_increase_percent.values():
        assert abs(increase) <= 25.0
