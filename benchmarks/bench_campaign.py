"""Campaign subsystem — grid throughput and the resume guarantee.

Runs a 24-point campaign (GÉANT × calibrated gravity at three load levels ×
REsPoNse/GreenTE/ECMP, swept over seeds, pair counts, demand totals and the
utilisation SLO) through the persistent results store three ways:

* **serial** — a clean end-to-end run (the throughput baseline),
* **parallel** — the same grid fanned out over the process pool, and
* **interrupted + resumed** — killed after 10 points (``max_points``), then
  re-invoked; the resumed store must match the clean serial store
  bit-for-bit (modulo wall-clock fields) and only the missing points may
  execute.

Records points/sec for both execution modes in ``BENCH_campaign.json``.
The parallel-speedup gate only applies on multi-core machines and can be
relaxed with ``CAMPAIGN_BENCH_SKIP_SPEEDUP_GATE=1`` (shared CI runners);
the resume-identity assertions always hold.

Also runnable standalone (writes the baseline JSON):

    PYTHONPATH=src python benchmarks/bench_campaign.py
"""

from __future__ import annotations

import json
import os
import tempfile
from multiprocessing import cpu_count
from pathlib import Path
from typing import Any, Dict

from repro.campaign import CampaignSpec, CampaignStore, run_campaign

#: Parallel execution must beat serial by this factor (multi-core only).
SPEEDUP_FLOOR = 1.2

#: How many points the "interrupted" run completes before the kill.
INTERRUPT_AFTER = 10

BASELINE_PATH = Path(__file__).parent / "BENCH_campaign.json"


def campaign_spec() -> CampaignSpec:
    """The 24-point grid: 3 seeds x 2 pair counts x 2 totals x 2 SLOs."""
    return CampaignSpec.from_dict(
        {
            "name": "bench-geant-grid",
            "base": {
                "topology": "geant",
                "traffic": {
                    "name": "gravity",
                    "params": {
                        "num_endpoints": 8,
                        "calibrate": True,
                        "levels": [0.25, 0.5, 1.0],
                    },
                },
                "power": "cisco",
                "schemes": [
                    {"name": "response", "params": {"num_paths": 3, "k": 3}},
                    {"name": "greente", "params": {}},
                    {"name": "ecmp", "params": {}},
                ],
            },
            "axes": {
                "seed": [0, 1, 2],
                "set": {
                    "traffic.num_pairs": [8, 12],
                    "traffic.total_traffic_bps": [1e9, 2e9],
                    "scenario.utilisation_threshold": [0.85, 0.9],
                },
            },
        }
    )


def measure() -> Dict[str, Any]:
    """Serial vs parallel throughput plus the interrupted-resume identity."""
    spec = campaign_spec()
    grid_size = spec.grid_size()
    with tempfile.TemporaryDirectory() as workdir:
        serial_store = os.path.join(workdir, "serial.sqlite")
        parallel_store = os.path.join(workdir, "parallel.sqlite")
        resumed_store = os.path.join(workdir, "resumed.sqlite")

        serial = run_campaign(spec, store_path=serial_store)
        parallel = run_campaign(spec, store_path=parallel_store, parallel=True)

        interrupted = run_campaign(
            spec, store_path=resumed_store, max_points=INTERRUPT_AFTER
        )
        resumed = run_campaign(spec, store_path=resumed_store)

        with CampaignStore(serial_store) as store:
            serial_dump = store.canonical_dump(serial.campaign_id)
        with CampaignStore(parallel_store) as store:
            parallel_dump = store.canonical_dump(parallel.campaign_id)
        with CampaignStore(resumed_store) as store:
            resumed_dump = store.canonical_dump(resumed.campaign_id)

    return {
        "grid_points": float(grid_size),
        "serial_s": serial.elapsed_s,
        "parallel_s": parallel.elapsed_s,
        "points_per_s_serial": serial.points_per_second,
        "points_per_s_parallel": parallel.points_per_second,
        "parallel_speedup": (
            serial.elapsed_s / parallel.elapsed_s if parallel.elapsed_s else 0.0
        ),
        "cpus": float(cpu_count()),
        "serial_failed": float(serial.failed),
        "parallel_store_identical": float(parallel_dump == serial_dump),
        "interrupted_executed": float(interrupted.executed),
        "interrupted_remaining": float(interrupted.remaining),
        "resumed_executed": float(resumed.executed),
        "resumed_remaining": float(resumed.remaining),
        "resumed_store_identical": float(resumed_dump == serial_dump),
    }


def _check(results: Dict[str, Any]) -> None:
    """The always-on invariants of a healthy campaign run."""
    assert results["serial_failed"] == 0.0
    assert results["parallel_store_identical"] == 1.0
    assert results["interrupted_executed"] == float(INTERRUPT_AFTER)
    assert results["resumed_executed"] == results["grid_points"] - INTERRUPT_AFTER
    assert results["resumed_remaining"] == 0.0
    assert results["resumed_store_identical"] == 1.0


def _gate_speedup(results: Dict[str, Any]) -> bool:
    """Whether the parallel-speedup floor applies in this environment."""
    if os.environ.get("CAMPAIGN_BENCH_SKIP_SPEEDUP_GATE"):
        return False
    return results["cpus"] > 1


def test_campaign_grid_throughput_and_resume(benchmark, run_once):
    results = run_once(measure)
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 4)
    _check(results)
    if _gate_speedup(results):
        assert results["parallel_speedup"] >= SPEEDUP_FLOOR, (
            f"parallel campaign only {results['parallel_speedup']:.2f}x faster "
            f"than serial on {int(results['cpus'])} CPUs (floor: {SPEEDUP_FLOOR}x)"
        )


if __name__ == "__main__":
    outcome = measure()
    BASELINE_PATH.write_text(json.dumps(outcome, indent=2, sort_keys=True) + "\n")
    for key, value in outcome.items():
        print(f"{key}: {value:.4f}")
    _check(outcome)
    if _gate_speedup(outcome) and outcome["parallel_speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: parallel speedup below {SPEEDUP_FLOOR}x")
        raise SystemExit(1)
    print(
        f"OK: {int(outcome['grid_points'])}-point grid at "
        f"{outcome['points_per_s_serial']:.2f} points/s serial, "
        f"{outcome['points_per_s_parallel']:.2f} points/s parallel; "
        f"interrupted run resumed to a bit-identical store; baseline written "
        f"to {BASELINE_PATH.name}"
    )
