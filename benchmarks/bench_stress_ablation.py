"""Section 4.2 (ablation) — sensitivity to the stress-factor exclusion fraction."""

from repro.experiments import run_stress_ablation


def test_stress_exclusion_ablation(benchmark, run_once):
    result = run_once(run_stress_ablation)
    for fraction, absorbed in result.rows():
        benchmark.extra_info[f"exclude_{int(fraction * 100)}%_absorbs_x_peak"] = round(absorbed, 2)
    benchmark.extra_info["best_fraction"] = result.best_fraction()
    # Paper: excluding 20% of the most-stressed links is sufficient for the
    # always-on plus on-demand paths to accommodate peak-hour demands.
    assert result.absorbs_peak(0.2)
    # More exclusion never reduces the absorbable load by much (monotone-ish).
    absorbed = dict(result.rows())
    assert absorbed[0.4] >= absorbed[0.0] - 0.1
