"""Section 4.1 (text) — carrying capacity of the always-on paths versus OSPF-InvCap."""

from repro.experiments import run_always_on_capacity


def test_always_on_capacity_fraction(benchmark, run_once):
    result = run_once(run_always_on_capacity)
    benchmark.extra_info["always_on_max_gbps"] = round(result.always_on_max_bps / 1e9, 3)
    benchmark.extra_info["ospf_max_gbps"] = round(result.ospf_max_bps / 1e9, 3)
    benchmark.extra_info["capacity_fraction"] = round(result.capacity_fraction, 2)
    # Paper: the always-on paths alone accommodate about 50% of the volume the
    # OSPF paths can carry (they trade capacity for power).
    assert result.always_on_max_bps > 0
    assert result.ospf_max_bps > 0
    assert 0.2 <= result.capacity_fraction <= 1.0
