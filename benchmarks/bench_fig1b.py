"""Figure 1b — recomputation rate of state-of-the-art approaches on the GÉANT replay."""



from repro.experiments import run_fig1b


def test_fig1b_recomputation_rate(benchmark, run_once):
    result = run_once(run_fig1b, num_days=3)
    benchmark.extra_info["max_recomputations_per_hour"] = result.max_rate_per_hour
    benchmark.extra_info["mean_recomputations_per_hour"] = round(result.mean_rate_per_hour, 2)
    benchmark.extra_info["trace_upper_bound_per_hour"] = result.series.upper_bound_per_hour
    benchmark.extra_info["interval_change_fraction"] = round(result.series.change_fraction, 2)
    # Paper: the rate reaches the trace-granularity bound of 4/hour.
    assert result.series.upper_bound_per_hour == 4.0
    assert 0.0 < result.max_rate_per_hour <= 4.0
