"""Figure 5 — REsPoNse power consumption for the replay of GÉANT traffic demands."""



from repro.experiments import run_fig5


def test_fig5_geant_replay(benchmark, run_once):
    result = run_once(run_fig5, num_days=3, subsample=2)
    benchmark.extra_info["mean_savings_response_%"] = round(
        result.mean_savings_percent["response"], 1
    )
    benchmark.extra_info["mean_savings_alternative_hw_%"] = round(
        result.mean_savings_percent["response_alternative_hw"], 1
    )
    benchmark.extra_info["recomputations_needed"] = result.recomputations_needed
    power = result.power_percent["response"]
    benchmark.extra_info["power_stddev_response_%"] = round(
        (sum((p - sum(power) / len(power)) ** 2 for p in power) / len(power)) ** 0.5, 2
    )
    # Paper: ~30% savings today, ~42% with the alternative hardware model,
    # little power variation, and no routing-table recomputation.
    assert 20.0 <= result.mean_savings_percent["response"] <= 50.0
    assert (
        result.mean_savings_percent["response_alternative_hw"]
        > result.mean_savings_percent["response"]
    )
    assert result.recomputations_needed == 0
