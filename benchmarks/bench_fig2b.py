"""Figure 2b — traffic coverage of the top-X energy-critical paths per node pair."""



from repro.experiments import run_fig2b


def test_fig2b_energy_critical_path_coverage(benchmark, run_once):
    result = run_once(run_fig2b)
    for network, curve in result.coverage.items():
        for paths, fraction in enumerate(curve, start=1):
            benchmark.extra_info[f"{network}_coverage_{paths}_paths"] = round(fraction, 3)
    benchmark.extra_info["geant_paths_for_98%"] = result.paths_for_98_percent["geant"]
    benchmark.extra_info["fattree_paths_for_98%"] = result.paths_for_98_percent["fattree"]
    # Paper: 2 paths cover ~98% on GÉANT (3 cover all); the fat-tree needs more.
    assert result.coverage["geant"][1] >= 0.9
    assert result.paths_for_98_percent["geant"] <= 3
    assert result.paths_for_98_percent["fattree"] >= result.paths_for_98_percent["geant"]
