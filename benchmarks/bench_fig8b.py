"""Figure 8b — ns-2-style simulation of the fat-tree datacenter topology."""

from repro.experiments import run_fig8b


def test_fig8b_fattree_simulation(benchmark, run_once):
    result = run_once(run_fig8b)
    benchmark.extra_info["wake_stall_s"] = round(result.wake_stall_s, 2)
    benchmark.extra_info["peak_demand_gbps"] = round(max(result.demand_bps) / 1e9, 2)
    benchmark.extra_info["peak_rate_gbps"] = round(max(result.sending_rate_bps) / 1e9, 2)
    benchmark.extra_info["min_power_%"] = round(min(result.power_percent), 1)
    # Paper: rates track the sine-wave demand closely; the on-demand resources
    # are woken up (5 s delay) when the wave first exceeds the always-on capacity.
    assert 0.0 < result.wake_stall_s <= 15.0
    assert result.sending_rate_bps[-1] >= 0.8 * result.demand_bps[-1]
    assert min(result.power_percent) < 80.0
