"""Batched campaign execution — throughput past the 5 points/s wall.

Runs the same 24-point GÉANT grid as ``bench_campaign.py`` two ways —
point-by-point serial and ``--batch`` (grouped evaluation through
:func:`repro.experiments.runner.execute_scenario_batch`) — and asserts the
batched store is ``canonical_dump``-bit-identical to the serial one, both
for a clean drain and for an interrupted-then-resumed drain.  Records
points/s for both modes in ``BENCH_campaign_batched.json``.

Throughput context: the grid's 24 points share one topology/power/routing
signature, so batching builds the network stack once, shares traffic
calibration between SLO twins (24 → 12 builds), shares REsPoNse plans,
GreenTE candidates/solves and ECMP power evaluations across points, and
drives all points through one interval-major timeline pass.  What remains
is dominated by the 12 distinct scipy MCF load calibrations (one per
seed × pair-count × demand-total combination), an irreducible per-grid cost
while results must stay bit-identical — which bounds the end-to-end speedup
well below the per-interval-loop savings.  The identity assertions always
hold; the speed gate is relaxed on shared/multi-core CI runners with
``CAMPAIGN_BATCH_BENCH_SKIP_SPEEDUP_GATE=1``, like the other campaign
benches.

Also runnable standalone (writes the baseline JSON):

    PYTHONPATH=src python benchmarks/bench_campaign_batched.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from multiprocessing import cpu_count
from pathlib import Path
from typing import Any, Dict

sys.path.insert(0, str(Path(__file__).parent))

from bench_campaign import INTERRUPT_AFTER, campaign_spec  # noqa: E402

from repro.campaign import CampaignStore, run_campaign  # noqa: E402

#: Batched execution must beat point-by-point serial by this factor.
SPEEDUP_FLOOR = 2.0

#: The "5 points/s wall" of the serial baseline that batching must break.
POINTS_PER_S_FLOOR = 5.4

BASELINE_PATH = Path(__file__).parent / "BENCH_campaign_batched.json"


def measure() -> Dict[str, Any]:
    """Serial vs batched throughput plus the batched resume identity."""
    spec = campaign_spec()
    grid_size = spec.grid_size()
    with tempfile.TemporaryDirectory() as workdir:
        serial_store = os.path.join(workdir, "serial.sqlite")
        batched_store = os.path.join(workdir, "batched.sqlite")
        resumed_store = os.path.join(workdir, "resumed.sqlite")

        serial = run_campaign(spec, store_path=serial_store)
        batched = run_campaign(spec, store_path=batched_store, batch=True)

        # Interrupted batched drain (the deterministic stand-in for a
        # kill), resumed in batch mode: only the missing points run, and
        # the final store must still match the serial one bit-for-bit.
        interrupted = run_campaign(
            spec, store_path=resumed_store, max_points=INTERRUPT_AFTER, batch=True
        )
        resumed = run_campaign(spec, store_path=resumed_store, batch=True)

        with CampaignStore(serial_store) as store:
            serial_dump = store.canonical_dump(serial.campaign_id)
        with CampaignStore(batched_store) as store:
            batched_dump = store.canonical_dump(batched.campaign_id)
        with CampaignStore(resumed_store) as store:
            resumed_dump = store.canonical_dump(resumed.campaign_id)

    return {
        "grid_points": float(grid_size),
        "serial_s": serial.elapsed_s,
        "batched_s": batched.elapsed_s,
        "points_per_s_serial": serial.points_per_second,
        "points_per_s_batched": batched.points_per_second,
        "batched_speedup": (
            serial.elapsed_s / batched.elapsed_s if batched.elapsed_s else 0.0
        ),
        "cpus": float(cpu_count()),
        "serial_failed": float(serial.failed),
        "batched_failed": float(batched.failed),
        "batched_store_identical": float(batched_dump == serial_dump),
        "interrupted_executed": float(interrupted.executed),
        "interrupted_remaining": float(interrupted.remaining),
        "resumed_executed": float(resumed.executed),
        "resumed_remaining": float(resumed.remaining),
        "resumed_store_identical": float(resumed_dump == serial_dump),
    }


def _check(results: Dict[str, Any]) -> None:
    """The always-on invariants of a healthy batched run."""
    assert results["serial_failed"] == 0.0
    assert results["batched_failed"] == 0.0
    assert results["batched_store_identical"] == 1.0
    assert results["interrupted_executed"] == float(INTERRUPT_AFTER)
    assert results["resumed_executed"] == results["grid_points"] - INTERRUPT_AFTER
    assert results["resumed_remaining"] == 0.0
    assert results["resumed_store_identical"] == 1.0


def _gate_speedup(results: Dict[str, Any]) -> bool:
    """Whether the throughput floors apply in this environment.

    Shared/multi-core CI runners make wall-clock comparisons flaky, so the
    gate only applies on dedicated single-core boxes (where the serial
    baseline was taken) and can always be relaxed with the env var.
    """
    if os.environ.get("CAMPAIGN_BATCH_BENCH_SKIP_SPEEDUP_GATE"):
        return False
    return results["cpus"] == 1


def test_campaign_batched_throughput_and_identity(benchmark, run_once):
    results = run_once(measure)
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 4)
    _check(results)
    if _gate_speedup(results):
        assert results["batched_speedup"] >= SPEEDUP_FLOOR, (
            f"batched campaign only {results['batched_speedup']:.2f}x faster "
            f"than serial (floor: {SPEEDUP_FLOOR}x)"
        )
        assert results["points_per_s_batched"] >= POINTS_PER_S_FLOOR, (
            f"batched throughput {results['points_per_s_batched']:.2f} points/s "
            f"below the serial wall (floor: {POINTS_PER_S_FLOOR} points/s)"
        )


if __name__ == "__main__":
    outcome = measure()
    BASELINE_PATH.write_text(json.dumps(outcome, indent=2, sort_keys=True) + "\n")
    for key, value in outcome.items():
        print(f"{key}: {value:.4f}")
    _check(outcome)
    if _gate_speedup(outcome) and (
        outcome["batched_speedup"] < SPEEDUP_FLOOR
        or outcome["points_per_s_batched"] < POINTS_PER_S_FLOOR
    ):
        print(
            f"FAIL: batched speedup {outcome['batched_speedup']:.2f}x / "
            f"{outcome['points_per_s_batched']:.2f} points/s below the floor "
            f"({SPEEDUP_FLOOR}x, {POINTS_PER_S_FLOOR} points/s)"
        )
        raise SystemExit(1)
    print(
        f"OK: {int(outcome['grid_points'])}-point grid at "
        f"{outcome['points_per_s_serial']:.2f} points/s serial vs "
        f"{outcome['points_per_s_batched']:.2f} points/s batched "
        f"({outcome['batched_speedup']:.2f}x); batched and resumed stores "
        f"bit-identical to serial; baseline written to {BASELINE_PATH.name}"
    )
