"""Observability overhead benchmark — tracing must be (nearly) free.

The unified observability layer promises two things about cost:

* **disabled tracing is a no-op** — every ``trace.span(...)`` on the hot
  path collapses to one module-global check and a shared singleton, so
  the instrumented engine runs at the same speed as before the layer
  existed;
* **enabled tracing stays under 5 % overhead** on a full eventful
  timeline run (spans stream to an NDJSON sidecar, attrs are computed
  only behind ``tracing_enabled()`` guards).

Both are measured on the same multi-interval GEANT scenario (calibrated
gravity traffic, a mid-trace link failure, REsPoNse + ECMP schemes) that
the service benchmarks replay.  Each mode takes the **minimum** of
several repetitions — the honest estimate of the code path's cost, robust
to scheduler noise.  The run also re-asserts the layer's core safety
property: the traced result is bit-identical to the untraced one.

The 5 % ceiling can be noisy on loaded shared runners; relax it with
``OBS_BENCH_SKIP_OVERHEAD_GATE=1`` (the identity and span-coverage
assertions always hold).

Also runnable standalone (writes the baseline JSON):

    PYTHONPATH=src python benchmarks/bench_observability.py
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

from repro.campaign.store import canonical_result_dict
from repro.obs import trace
from repro.scenario.engine import build_scenario, run_built_scenario
from repro.scenario.spec import ScenarioSpec

#: Wall-clock repetitions per mode; min-of-N is the reported time.
REPEATS = 5

#: Enabled-tracing overhead ceiling (fraction of the untraced runtime).
OVERHEAD_CEILING = 0.05

BASELINE_PATH = Path(__file__).parent / "BENCH_observability.json"


def timeline_scenario() -> Dict[str, Any]:
    """A multi-interval eventful spec — the engine's representative load."""
    return {
        "name": "bench-observability",
        "topology": "geant",
        "traffic": {
            "name": "gravity",
            "params": {
                "num_pairs": 120,
                "num_endpoints": 20,
                "seed": 1,
                "calibrate": True,
                "levels": [round(0.2 + 0.8 * i / 19, 4) for i in range(20)],
            },
        },
        "power": "cisco",
        "schemes": [{"name": "response", "params": {"num_paths": 2, "k": 2}}, "ecmp"],
        "events": [
            {
                "name": "link-failure",
                "params": {"time_s": 900.0, "link": ["DE", "FR"], "repair_s": 1800.0},
            }
        ],
        "utilisation_threshold": 0.9,
    }


def _timed(function) -> float:
    started = time.perf_counter()
    function()
    return time.perf_counter() - started


def measure() -> Dict[str, Any]:
    """Min-of-N timeline runtimes: untraced, traced, and profiled.

    The three modes are **interleaved** within every repetition — warm-up
    drift (caches filling, CPU clocks settling) would otherwise flatter
    whichever mode runs last and fake a negative overhead.
    """
    results: Dict[str, Any] = {"repeats": float(REPEATS)}
    spec = ScenarioSpec.from_dict(timeline_scenario())
    built = build_scenario(spec)  # build once: the benchmark times the runs

    with tempfile.TemporaryDirectory() as workdir:
        sidecar = os.path.join(workdir, "bench.ndjson")

        # Warm-up pass per mode (also yields the identity-check results).
        untraced_result = run_built_scenario(built)
        trace.configure_tracing(sidecar)
        try:
            traced_result = run_built_scenario(built)
        finally:
            trace.disable_tracing()
        collector = trace.PhaseCollector()

        def run_traced() -> None:
            trace.configure_tracing(sidecar)
            try:
                run_built_scenario(built)
            finally:
                trace.disable_tracing()

        def run_profiled() -> None:
            with trace.collect(collector):
                run_built_scenario(built)

        best = {"untraced": float("inf"), "traced": float("inf"), "profiled": float("inf")}
        for _ in range(REPEATS):
            best["untraced"] = min(
                best["untraced"], _timed(lambda: run_built_scenario(built))
            )
            best["traced"] = min(best["traced"], _timed(run_traced))
            best["profiled"] = min(best["profiled"], _timed(run_profiled))
        results["untraced_s"] = best["untraced"]
        results["traced_s"] = best["traced"]
        results["profiled_s"] = best["profiled"]
        spans = list(trace.iter_trace(sidecar))

    results["spans_per_run"] = float(len(spans)) / (REPEATS + 1)
    results["traced_overhead"] = (
        results["traced_s"] / results["untraced_s"] - 1.0
        if results["untraced_s"]
        else 0.0
    )
    results["profiled_overhead"] = (
        results["profiled_s"] / results["untraced_s"] - 1.0
        if results["untraced_s"]
        else 0.0
    )
    results["traced_identical"] = float(
        canonical_result_dict(traced_result.to_dict())
        == canonical_result_dict(untraced_result.to_dict())
    )
    results["step_spans_per_run"] = sum(
        1 for span in spans if span["name"] == "scheme.step"
    ) / (REPEATS + 1)
    return results


def _check(results: Dict[str, Any]) -> None:
    """The always-on invariants, independent of timing noise."""
    assert results["traced_identical"] == 1.0, "tracing perturbed the result"
    assert results["spans_per_run"] >= 1.0, "traced runs emitted no spans"
    # Every (scheme, interval) pair steps under a span: 2 schemes x >=20
    # intervals on this spec.
    assert results["step_spans_per_run"] >= 40.0


def _gate_overhead() -> bool:
    """Whether the 5 % ceiling applies in this environment."""
    return not os.environ.get("OBS_BENCH_SKIP_OVERHEAD_GATE")


def test_observability_overhead(benchmark, run_once):
    results = run_once(measure)
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 4)
    _check(results)
    if _gate_overhead():
        assert results["traced_overhead"] < OVERHEAD_CEILING, (
            f"enabled tracing cost {results['traced_overhead']:.1%} "
            f"(ceiling: {OVERHEAD_CEILING:.0%})"
        )


if __name__ == "__main__":
    outcome = measure()
    BASELINE_PATH.write_text(json.dumps(outcome, indent=2, sort_keys=True) + "\n")
    for key, value in outcome.items():
        print(f"{key}: {value:.4f}")
    _check(outcome)
    if _gate_overhead() and outcome["traced_overhead"] >= OVERHEAD_CEILING:
        print(f"FAIL: tracing overhead above {OVERHEAD_CEILING:.0%}")
        raise SystemExit(1)
    print(
        f"OK: untraced {outcome['untraced_s'] * 1e3:.1f} ms, traced "
        f"{outcome['traced_s'] * 1e3:.1f} ms "
        f"({outcome['traced_overhead']:+.1%}, "
        f"{outcome['spans_per_run']:.0f} spans/run), profiled "
        f"{outcome['profiled_overhead']:+.1%}; results bit-identical; "
        f"baseline written to {BASELINE_PATH.name}"
    )
