"""Figure 7 — REsPoNseTE sleeps on-demand links quickly and restores traffic after failure."""

from repro.experiments import run_fig7


def test_fig7_click_testbed_replay(benchmark, run_once):
    result = run_once(run_fig7)
    benchmark.extra_info["sleep_convergence_s"] = round(result.sleep_convergence_s or -1, 3)
    benchmark.extra_info["failure_restore_s"] = round(result.restore_time_s or -1, 3)
    benchmark.extra_info["peak_middle_rate_mbps"] = round(max(result.rates_mbps["middle"]), 2)
    benchmark.extra_info["final_upper_rate_mbps"] = round(result.rates_mbps["upper"][-1], 2)
    benchmark.extra_info["final_lower_rate_mbps"] = round(result.rates_mbps["lower"][-1], 2)
    # Paper: traffic shifts onto the always-on path within ~0.2 s (2 RTTs) and
    # is restored ~0.11 s after the failure (detection + wake-up).
    assert result.sleep_convergence_s is not None and result.sleep_convergence_s <= 0.5
    assert result.restore_time_s is not None and result.restore_time_s <= 0.3
    assert max(result.rates_mbps["middle"]) > 4.0
