"""Engine scale sweep — dense per-flow engine vs the sparse aggregated path.

The sweep tier answers one question: how far does a single timeline step
(the per-interval max-min rate allocation) scale on fat-tree datacenter
topologies, and at what memory cost?  Each grid point pins a fat-tree arity
``k`` and a flow population (``pairs`` host pairs times ``members`` flows
per pair, drawn from four shared demand classes) and measures, in a
**spawn-isolated child process** so ``ru_maxrss`` is not polluted by
earlier points:

* ``step_seconds`` — one warm rate-allocation step over the full flow set,
* ``peak_rss_mb`` — ``resource.getrusage(RUSAGE_SELF).ru_maxrss``,
* ``alloc_mb`` — the resident allocation structures (per-flow incidence
  arrays for the dense path, the :class:`~repro.simulator.AggregatedFlows`
  table for the sparse path),
* ``checksum`` — SHA-256 of the per-flow rate vector bytes.

Two engine paths run per point: **dense** builds one
:class:`~repro.simulator.Flow` object per flow and allocates through
``SimulatedNetwork.allocate_rates`` with the dense kernel pinned; **sparse**
groups the same flows per host pair into an ``AggregatedFlows`` table and
allocates through :func:`~repro.simulator.allocate_aggregated` (the grouped
sparse kernel).  Wherever both paths run their rate checksums must match
bit-for-bit — that assertion is never relaxed.

The dense path hits its memory wall at roughly 0.8 KB per flow (one Python
``Flow`` object, id string and demand closure each), so above
``ENGINE_BENCH_DENSE_FLOW_LIMIT`` flows (default 500 000) the dense point is
**extrapolated, not measured**: an affine fit of peak RSS and step time over
the measured dense points, which under-counts the true dense cost (it
ignores the larger topology) and is therefore conservative for the ratio
gate below.  Extrapolated entries are marked ``"mode": "extrapolated"`` in
``BENCH_engine_scale.json``.

Gates at the flagship point (k=32 fat-tree, >= 10^5 flows):

* sparse peak RSS <= dense peak RSS (measured or extrapolated) / 5,
* sparse peak RSS <= an absolute ceiling (``SPARSE_RSS_CEILING_MB``).

RSS depends on the allocator and Python build, so the gates can be relaxed
with ``ENGINE_BENCH_SKIP_RSS_GATE=1``; the bit-identity assertion cannot.

Also runnable standalone (writes the baseline JSON):

    PYTHONPATH=src python benchmarks/bench_engine_scale.py

``--quick`` runs only the smallest grid point (CI smoke) without touching
the committed baseline.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path as FilePath
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

#: (fat-tree k, host pairs, member flows per pair).  The flagship point
#: carries 4096 * 512 = 2 097 152 flows on a k=32 fat-tree (9472 nodes,
#: 49152 arcs) — the million-flow scale axis of the roadmap.
GRID: List[Tuple[int, int, int]] = [
    (8, 128, 16),  # 2 048 flows
    (16, 1280, 16),  # 20 480 flows
    (16, 1280, 160),  # 204 800 flows
    (32, 4096, 512),  # 2 097 152 flows
]

#: Above this many flows the dense per-flow path is extrapolated instead of
#: measured (its Flow-object memory wall).  Override to force measurement.
DENSE_FLOW_LIMIT = int(os.environ.get("ENGINE_BENCH_DENSE_FLOW_LIMIT", "500000"))

#: The flagship point must keep sparse RSS at or below dense / this factor.
RSS_RATIO_FLOOR = 5.0

#: Absolute bounded-memory claim for the sparse path at the flagship point.
SPARSE_RSS_CEILING_MB = 640.0

#: Four shared demand classes (bps).  Shared classes are what make million-
#: flow max-min filling tractable: flows with equal demand freeze in the
#: same kernel iteration, so the iteration count tracks the number of
#: saturating arcs plus classes instead of the number of distinct demands.
DEMAND_CLASSES = (0.5e6, 2e6, 8e6, 32e6)

SEED = 7

BASELINE_PATH = FilePath(__file__).parent / "BENCH_engine_scale.json"
SRC_PATH = FilePath(__file__).resolve().parent.parent / "src"


def build_point(k: int, pairs: int, members: int, seed: int = SEED):
    """Deterministic flow population for one grid point.

    Paths are constructed from the fat-tree naming scheme directly
    (host -> edge -> aggregation -> core -> aggregation -> edge -> host)
    instead of per-pair shortest-path searches, which would dominate the
    build at k=32.  Returns ``(topology, paths, flow_group, demands_bps)``.
    """
    from repro.routing import Path
    from repro.topology.fattree import (
        aggregation_switch_name,
        build_fattree,
        core_switch_name,
        edge_switch_name,
        host_name,
    )

    half = k // 2
    topology = build_fattree(k)
    rng = random.Random(seed)

    def rand_host() -> Tuple[int, int, int]:
        return (rng.randrange(k), rng.randrange(half), rng.randrange(half))

    def path_between(a, b) -> Path:
        (p1, e1, h1), (p2, e2, h2) = a, b
        src, dst = host_name(p1, e1, h1), host_name(p2, e2, h2)
        if (p1, e1) == (p2, e2):
            return Path.of([src, edge_switch_name(p1, e1), dst])
        agg = rng.randrange(half)
        if p1 == p2:
            return Path.of(
                [
                    src,
                    edge_switch_name(p1, e1),
                    aggregation_switch_name(p1, agg),
                    edge_switch_name(p2, e2),
                    dst,
                ]
            )
        core = agg * half + rng.randrange(half)
        return Path.of(
            [
                src,
                edge_switch_name(p1, e1),
                aggregation_switch_name(p1, agg),
                core_switch_name(core),
                aggregation_switch_name(p2, agg),
                edge_switch_name(p2, e2),
                dst,
            ]
        )

    paths = []
    for _ in range(pairs):
        a, b = rand_host(), rand_host()
        while b == a:
            b = rand_host()
        paths.append(path_between(a, b))

    flow_group = np.repeat(np.arange(pairs, dtype=np.int64), members)
    classes = np.asarray(DEMAND_CLASSES, dtype=np.float64)
    demands = classes[np.arange(pairs * members) % len(classes)]
    return topology, paths, flow_group, demands


def measure_point(mode: str, k: int, pairs: int, members: int) -> Dict[str, Any]:
    """One (point, engine-path) measurement — run inside a fresh process."""
    import resource

    from repro.simulator import (
        AggregatedFlows,
        Flow,
        SimulatedNetwork,
        allocate_aggregated,
        constant_demand,
        set_fairness_kernel,
    )

    topology, paths, flow_group, demands = build_point(k, pairs, members)
    network = SimulatedNetwork(topology)

    if mode == "dense":
        set_fairness_kernel("dense")
        flows = [
            Flow(
                f"f{index}",
                paths[group].nodes[0],
                paths[group].nodes[-1],
                constant_demand(float(demands[index])),
                path=paths[group],
            )
            for index, group in enumerate(flow_group)
        ]
        network.allocate_rates(flows, now_s=0.0)  # warm the compiled-path cache
        start = time.perf_counter()
        network.allocate_rates(flows, now_s=0.0)
        step_seconds = time.perf_counter() - start
        rates = np.array([flow.rate_bps for flow in flows])
        compiled = network._compiled_flows
        alloc_bytes = compiled.flat_flow.nbytes + compiled.flat_arc.nbytes
    elif mode == "sparse":
        table = AggregatedFlows.from_arrays(tuple(paths), flow_group, demands)
        allocate_aggregated(network, table)  # warm the usable-vector cache
        start = time.perf_counter()
        rates = allocate_aggregated(network, table)
        step_seconds = time.perf_counter() - start
        alloc_bytes = table.nbytes()
    else:
        raise ValueError(f"unknown mode {mode!r}")

    return {
        "mode": "measured",
        "engine": mode,
        "k": k,
        "num_flows": int(pairs * members),
        "num_groups": int(pairs),
        "num_arcs": int(network._arc_table.num_arcs),
        "step_seconds": step_seconds,
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
        "alloc_mb": alloc_bytes / 1e6,
        "checksum": hashlib.sha256(rates.tobytes()).hexdigest(),
    }


def _run_child(mode: str, k: int, pairs: int, members: int) -> Dict[str, Any]:
    """Measure one point in a freshly spawned interpreter.

    A fork would inherit the parent's resident set, so ``ru_maxrss`` of the
    child would report the parent's peak; a fresh ``sys.executable`` keeps
    every point's peak independent.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_PATH) + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, __file__, "--child", mode, str(k), str(pairs), str(members)],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    ).stdout
    return json.loads(output.splitlines()[-1])


def _extrapolate_dense(
    dense_points: List[Dict[str, Any]], k: int, pairs: int, members: int, num_arcs: int
) -> Dict[str, Any]:
    """Affine fit of dense peak RSS / step time over the measured points.

    The fit uses the two largest measured dense populations and ignores the
    topology growth from their ``k`` to the target's, so it *under*-estimates
    the true dense cost — conservative for the RSS-ratio gate.
    """
    anchors = sorted(dense_points, key=lambda p: p["num_flows"])[-2:]
    low, high = anchors
    flow_span = high["num_flows"] - low["num_flows"]
    rss_slope = (high["peak_rss_mb"] - low["peak_rss_mb"]) / flow_span
    step_slope = (high["step_seconds"] - low["step_seconds"]) / flow_span
    num_flows = pairs * members
    extra = num_flows - high["num_flows"]
    return {
        "mode": "extrapolated",
        "engine": "dense",
        "k": k,
        "num_flows": int(num_flows),
        "num_groups": int(pairs),
        "num_arcs": int(num_arcs),
        "step_seconds": high["step_seconds"] + step_slope * extra,
        "peak_rss_mb": high["peak_rss_mb"] + rss_slope * extra,
        "alloc_mb": None,
        "checksum": None,
        "fit_anchors_flows": [low["num_flows"], high["num_flows"]],
        "fit_rss_kb_per_flow": rss_slope * 1024.0,
    }


def measure(quick: bool = False) -> Dict[str, Any]:
    """Run the sweep and assemble the baseline record."""
    grid = GRID[:1] if quick else GRID
    points: List[Dict[str, Any]] = []
    dense_measured: List[Dict[str, Any]] = []
    for k, pairs, members in grid:
        num_flows = pairs * members
        sparse = _run_child("sparse", k, pairs, members)
        if num_flows <= DENSE_FLOW_LIMIT:
            dense = _run_child("dense", k, pairs, members)
            dense_measured.append(dense)
            if dense["checksum"] != sparse["checksum"]:
                raise AssertionError(
                    f"sparse rates diverge from dense at k={k}, {num_flows} flows"
                )
        else:
            dense = _extrapolate_dense(
                dense_measured, k, pairs, members, sparse["num_arcs"]
            )
        points.append({"dense": dense, "sparse": sparse})

    flagship = points[-1]
    return {
        "grid": [
            {"k": k, "pairs": pairs, "members": members} for k, pairs, members in grid
        ],
        "dense_flow_limit": DENSE_FLOW_LIMIT,
        "demand_classes_bps": list(DEMAND_CLASSES),
        "points": points,
        "flagship": {
            "k": flagship["sparse"]["k"],
            "num_flows": flagship["sparse"]["num_flows"],
            "sparse_step_seconds": flagship["sparse"]["step_seconds"],
            "sparse_peak_rss_mb": flagship["sparse"]["peak_rss_mb"],
            "dense_peak_rss_mb": flagship["dense"]["peak_rss_mb"],
            "dense_mode": flagship["dense"]["mode"],
            "rss_ratio": flagship["dense"]["peak_rss_mb"]
            / flagship["sparse"]["peak_rss_mb"],
        },
    }


def _check_identity(results: Dict[str, Any]) -> None:
    """Bit-identity wherever both engine paths actually ran — never relaxed."""
    for point in results["points"]:
        dense, sparse = point["dense"], point["sparse"]
        if dense["mode"] == "measured":
            assert dense["checksum"] == sparse["checksum"], (
                f"sparse rates diverge from dense at k={dense['k']}, "
                f"{dense['num_flows']} flows"
            )


def _gate_rss(results: Dict[str, Any]) -> Optional[str]:
    """The flagship memory gates; returns a failure message or ``None``."""
    if os.environ.get("ENGINE_BENCH_SKIP_RSS_GATE"):
        return None
    flagship = results["flagship"]
    if flagship["rss_ratio"] < RSS_RATIO_FLOOR:
        return (
            f"sparse RSS only {flagship['rss_ratio']:.2f}x below dense "
            f"at k={flagship['k']} / {flagship['num_flows']} flows "
            f"(floor: {RSS_RATIO_FLOOR}x)"
        )
    if flagship["sparse_peak_rss_mb"] > SPARSE_RSS_CEILING_MB:
        return (
            f"sparse peak RSS {flagship['sparse_peak_rss_mb']:.0f} MB above "
            f"the {SPARSE_RSS_CEILING_MB:.0f} MB ceiling"
        )
    return None


def test_engine_scale_sparse_identity_and_memory(benchmark, run_once):
    # The pytest entry runs the quick (k=8) tier: spawn-isolated dense and
    # sparse children, bit-identity asserted.  The RSS-ratio gate only
    # applies to the flagship point, which the quick tier does not reach.
    results = run_once(measure, quick=True)
    _check_identity(results)
    point = results["points"][0]
    benchmark.extra_info["num_flows"] = point["sparse"]["num_flows"]
    benchmark.extra_info["sparse_step_ms"] = round(
        point["sparse"]["step_seconds"] * 1e3, 3
    )
    benchmark.extra_info["sparse_peak_rss_mb"] = round(
        point["sparse"]["peak_rss_mb"], 1
    )
    assert point["dense"]["mode"] == "measured"


def main(argv: List[str]) -> int:
    if len(argv) >= 2 and argv[1] == "--child":
        mode, k, pairs, members = argv[2], int(argv[3]), int(argv[4]), int(argv[5])
        sys.path.insert(0, str(SRC_PATH))
        print(json.dumps(measure_point(mode, k, pairs, members)))
        return 0

    quick = "--quick" in argv
    results = measure(quick=quick)
    _check_identity(results)
    for point in results["points"]:
        for engine in ("dense", "sparse"):
            row = point[engine]
            rss = f"{row['peak_rss_mb']:.1f}"
            print(
                f"k={row['k']:<3} flows={row['num_flows']:<8} {engine:<7}"
                f"[{row['mode']}] step={row['step_seconds']:.3f}s rss={rss}MB"
            )
    if not quick:
        BASELINE_PATH.write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline written to {BASELINE_PATH.name}")
        failure = _gate_rss(results)
        if failure:
            print(f"FAIL: {failure}")
            return 1
        flagship = results["flagship"]
        print(
            f"OK: k={flagship['k']} with {flagship['num_flows']} flows — "
            f"sparse step {flagship['sparse_step_seconds']:.2f}s at "
            f"{flagship['sparse_peak_rss_mb']:.0f} MB, "
            f"{flagship['rss_ratio']:.1f}x below the "
            f"{flagship['dense_mode']} dense path"
        )
    else:
        print("OK: quick tier — sparse bit-identical to dense")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
