"""Engine scaling — vectorized max-min allocation vs the dict-based oracle.

Unlike the figure benchmarks this is a microbenchmark: it builds a k=8
fat-tree carrying 1024 flows on shortest paths and times the per-step rate
allocation of the vectorized engine (:meth:`SimulatedNetwork.allocate_rates`)
against the seed dict-based implementation preserved in
:mod:`repro.simulator.reference`.  The vectorized engine must be at least
5x faster and produce identical rates.

Also runnable standalone:  PYTHONPATH=src python benchmarks/bench_engine_scale.py
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Tuple

from repro.routing import Path
from repro.simulator import (
    Flow,
    SimulatedNetwork,
    constant_demand,
    reference_allocate_rates,
)
from repro.topology.fattree import build_fattree, hosts
from repro.units import mbps

#: Benchmark scale: the acceptance bar is a k=8 fat-tree with >= 1k flows.
FATTREE_K = 8
NUM_FLOWS = 1024
SPEEDUP_FLOOR = 5.0
VECTORIZED_ROUNDS = 10
REFERENCE_ROUNDS = 2


def build_scenario(
    k: int = FATTREE_K, num_flows: int = NUM_FLOWS, seed: int = 0
) -> Tuple[SimulatedNetwork, List[Flow]]:
    """A fat-tree network with random host-to-host flows on shortest paths.

    Demands are drawn across three orders of magnitude so the progressive
    filling works through many distinct bottleneck levels — the regime where
    the per-iteration cost dominates.
    """
    topology = build_fattree(k)
    network = SimulatedNetwork(topology)
    endpoints = hosts(topology)
    rng = random.Random(seed)
    flows: List[Flow] = []
    for index in range(num_flows):
        origin, destination = rng.sample(endpoints, 2)
        path = Path.of(topology.shortest_path(origin, destination))
        flows.append(
            Flow(
                f"flow{index}",
                origin,
                destination,
                constant_demand(rng.uniform(mbps(1), mbps(2000))),
                path=path,
            )
        )
    return network, flows


def _time_per_step(function, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        function()
    return (time.perf_counter() - start) / rounds


def measure(seed: int = 0) -> Dict[str, float]:
    """Per-step timings, speedup and rate-equality check of both engines."""
    network, flows = build_scenario(seed=seed)
    network.allocate_rates(flows, now_s=0.0)  # warm the compiled-path cache
    vectorized_s = _time_per_step(
        lambda: network.allocate_rates(flows, now_s=0.0), VECTORIZED_ROUNDS
    )
    vectorized_rates = {flow.flow_id: flow.rate_bps for flow in flows}

    reference_s = _time_per_step(
        lambda: reference_allocate_rates(network, flows, now_s=0.0), REFERENCE_ROUNDS
    )
    reference_rates = {flow.flow_id: flow.rate_bps for flow in flows}

    worst_rate_diff = max(
        abs(vectorized_rates[flow_id] - rate) / max(rate, 1.0)
        for flow_id, rate in reference_rates.items()
    )
    return {
        "num_flows": float(len(flows)),
        "vectorized_ms_per_step": vectorized_s * 1e3,
        "reference_ms_per_step": reference_s * 1e3,
        "speedup": reference_s / vectorized_s,
        "worst_rate_rel_diff": worst_rate_diff,
    }


def test_engine_scale_vectorized_speedup(benchmark, run_once):
    results = run_once(measure)
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 3)
    # Acceptance bar: >= 5x on a k=8 fat-tree with >= 1k flows, same rates.
    assert results["num_flows"] >= 1000
    assert results["worst_rate_rel_diff"] <= 1e-9
    assert results["speedup"] >= SPEEDUP_FLOOR, (
        f"vectorized engine only {results['speedup']:.1f}x faster "
        f"than the reference (floor: {SPEEDUP_FLOOR}x)"
    )


if __name__ == "__main__":
    import os

    outcome = measure()
    for key, value in outcome.items():
        print(f"{key}: {value:.3f}")
    if outcome["worst_rate_rel_diff"] > 1e-9:
        raise SystemExit(1)
    # Shared CI runners make wall-clock gates flaky; set
    # ENGINE_BENCH_SKIP_SPEEDUP_GATE=1 to report timings without failing.
    if not os.environ.get("ENGINE_BENCH_SKIP_SPEEDUP_GATE"):
        if outcome["speedup"] < SPEEDUP_FLOOR:
            raise SystemExit(1)
    print(f"OK: vectorized engine is {outcome['speedup']:.1f}x faster")
