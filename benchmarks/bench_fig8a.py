"""Figure 8a — ns-2-style simulation of the PoP-access ISP topology."""

from repro.experiments import run_fig8a


def test_fig8a_pop_access_simulation(benchmark, run_once):
    result = run_once(run_fig8a)
    benchmark.extra_info["wake_stall_s"] = round(result.wake_stall_s, 2)
    benchmark.extra_info["final_demand_gbps"] = round(result.demand_bps[-1] / 1e9, 2)
    benchmark.extra_info["final_rate_gbps"] = round(result.sending_rate_bps[-1] / 1e9, 2)
    benchmark.extra_info["min_power_%"] = round(min(result.power_percent), 1)
    benchmark.extra_info["max_power_%"] = round(max(result.power_percent), 1)
    # Paper: sending rates track the demand within a few RTTs (plus one
    # wake-up delay), while the network power stays well below the original.
    assert abs(result.sending_rate_bps[-1] - result.demand_bps[-1]) <= 0.15 * result.demand_bps[-1]
    assert max(result.power_percent) < 95.0
    assert min(result.power_percent) < 70.0
