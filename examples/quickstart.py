#!/usr/bin/env python3
"""Quickstart: compute a REsPoNse plan and measure the energy savings.

This example walks through the whole public API in a few lines:

1. build an evaluation topology (the GÉANT-like pan-European network),
2. pick a power model and a set of origin-destination pairs,
3. compute the REsPoNse plan (always-on, on-demand and failover paths),
4. place a gravity-model demand on the installed paths with the activation
   planner, and
5. report the power drawn versus the fully powered network.

Run with:  python examples/quickstart.py
"""

from repro import (
    CiscoRouterPowerModel,
    ResponseConfig,
    activate_paths,
    build_response_plan,
    full_power,
)
from repro.topology import build_geant
from repro.traffic import gravity_matrix, select_pairs_among_subset
from repro.units import gbps, to_gbps


def main() -> None:
    topology = build_geant()
    power_model = CiscoRouterPowerModel()
    baseline = full_power(topology, power_model).total_w
    print(f"Topology: {topology.name} — {topology.num_nodes} PoPs, "
          f"{topology.num_links} links, {baseline / 1e3:.1f} kW fully powered")

    # The paper selects random subsets of origins and destinations.
    pairs = select_pairs_among_subset(topology.routers(), num_endpoints=16, num_pairs=80, seed=1)
    print(f"Installing paths for {len(pairs)} origin-destination pairs")

    # Off-line computation of the three path sets (Section 4 of the paper).
    plan = build_response_plan(
        topology,
        power_model,
        pairs=pairs,
        config=ResponseConfig(num_paths=3, k=3),
    )
    summary = plan.summary()
    print(f"Plan: {summary['num_on_demand_tables']} on-demand table(s), "
          f"always-on subset = {summary['always_on_nodes']} nodes / "
          f"{summary['always_on_links']} links")

    # Replay three demand levels through the online activation logic.
    for total in (gbps(2), gbps(10), gbps(40)):
        demands = gravity_matrix(topology, total_traffic_bps=total, pairs=pairs)
        result = activate_paths(topology, power_model, plan, demands)
        print(
            f"demand {to_gbps(total):5.1f} Gb/s -> power {result.power_percent:5.1f}% "
            f"of original ({result.energy_savings_percent():4.1f}% savings), "
            f"{result.num_on_demand_pairs} pair(s) on on-demand paths, "
            f"max link utilisation {result.max_utilisation:.2f}"
        )


if __name__ == "__main__":
    main()
