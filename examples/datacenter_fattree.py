#!/usr/bin/env python3
"""Datacenter scenario: a k=4 fat-tree under the ElasticTree sine-wave demand.

Reproduces the essence of Figure 4 of the paper: with localised ("near")
traffic REsPoNse keeps most of the fabric asleep for the whole diurnal cycle,
with core-crossing ("far") traffic the savings shrink near the peak, and the
ECMP baseline keeps everything powered regardless of load.  The ElasticTree
greedy subset is shown for comparison (the paper's curves coincide with
REsPoNse).

Run with:  python examples/datacenter_fattree.py
"""

from repro import CommoditySwitchPowerModel, ResponseConfig, build_response_plan
from repro.core import activate_paths
from repro.optim import elastictree_subset
from repro.power import full_power, network_power
from repro.routing import ecmp_active_elements
from repro.topology import build_fattree
from repro.traffic import fattree_sine_pairs, sine_wave_trace


def main() -> None:
    k = 4
    topology = build_fattree(k)
    power_model = CommoditySwitchPowerModel(ports_at_peak=k)
    baseline = full_power(topology, power_model).total_w
    print(f"Fat-tree k={k}: {topology.num_nodes} nodes, {topology.num_links} links, "
          f"{baseline:.0f} W fully powered")

    for mode in ("near", "far"):
        pairs = fattree_sine_pairs(topology, mode, seed=4)
        trace = sine_wave_trace(topology, mode=mode, num_intervals=11, seed=4)
        plan = build_response_plan(
            topology, power_model, pairs=pairs,
            config=ResponseConfig(num_paths=3, k=4),
        )
        print(f"\n=== {mode} (={'intra' if mode == 'near' else 'inter'}-pod) traffic ===")
        print(" t | demand | REsPoNse | ElasticTree | ECMP")
        for index, matrix in enumerate(trace.matrices()):
            response = activate_paths(topology, power_model, plan, matrix)
            elastic = elastictree_subset(topology, power_model, matrix)
            ecmp_nodes, ecmp_links = ecmp_active_elements(topology, matrix)
            ecmp_power = network_power(topology, power_model, ecmp_nodes, ecmp_links).total_w
            print(
                f"{index:2d} | {matrix.total_bps / 1e9:5.2f}G | "
                f"{response.power_percent:7.1f}% | "
                f"{100 * elastic.power_w / baseline:10.1f}% | "
                f"{100 * ecmp_power / baseline:5.1f}%"
            )


if __name__ == "__main__":
    main()
