#!/usr/bin/env python3
"""Failure recovery: the Click-testbed experiment on the flow-level simulator.

Reproduces Figure 7 of the paper on the Figure 3 example topology: traffic
from routers A and C toward K starts spread over the on-demand paths,
REsPoNseTE (started at t = 5 s) aggregates it onto the always-on middle path
within a couple of RTTs so the on-demand links can sleep, and when the middle
link E-H fails at t = 5.7 s the traffic is restored onto the (sleeping)
failover paths after the detection delay plus the 10 ms wake-up.

Run with:  python examples/failure_recovery.py
"""

from repro.experiments import run_fig7


def main() -> None:
    result = run_fig7()
    print("REsPoNseTE on the Figure 3 topology (10 Mb/s links, 16.67 ms per hop)")
    print(f"traffic aggregated and on-demand links asleep "
          f"{result.sleep_convergence_s * 1e3:.0f} ms after the TE start")
    print(f"traffic restored {result.restore_time_s * 1e3:.0f} ms after the E-H link failure")
    print()
    print("   time |  middle (E-H) |  upper (D-G) |  lower (F-J)   [Mb/s]")
    previous = None
    for time, middle, lower, upper in result.rows():
        row = (round(middle, 2), round(lower, 2), round(upper, 2))
        if row != previous:  # print only when something changes
            print(f"  {time:5.2f} | {middle:13.2f} | {upper:12.2f} | {lower:12.2f}")
            previous = row


if __name__ == "__main__":
    main()
