#!/usr/bin/env python3
"""Application performance over energy-critical paths (Section 5.4 / Figure 9).

Runs the media-streaming workload (BulletMedia-style, 600 kb/s stream) and
the SPECweb-like web workload over (a) REsPoNse-lat paths and (b) the
OSPF-InvCap baseline on the synthetic Abovenet topology, and reports the
impact of energy-aware routing on application-level metrics.

Run with:  python examples/application_performance.py
"""

from repro.experiments import run_fig9, run_web_latency


def main() -> None:
    print("=== Media streaming (Figure 9) ===")
    streaming = run_fig9()
    print(" scenario    |  min%  median%  max%  | playable clients")
    for label, minimum, median, maximum, playable in streaming.rows():
        print(
            f" {label:<11} | {minimum:5.1f}  {median:6.1f} {maximum:6.1f} | {playable * 100:5.1f}%"
        )
    for count, increase in streaming.block_latency_increase_percent.items():
        print(f" block retrieval latency change at {count} clients: {increase:+.1f}% "
              f"(REsPoNse-lat vs InvCap)")

    print()
    print("=== Web workload (SPECweb-like static files) ===")
    web = run_web_latency()
    for name, mean_ms, median_ms, p95_ms in web.rows():
        print(f" {name:<12}: mean {mean_ms:7.2f} ms   median {median_ms:7.2f} ms   "
              f"p95 {p95_ms:7.2f} ms")
    print(f" mean retrieval latency change: {web.latency_increase_percent:+.1f}% "
          f"(paper reports about +9%)")


if __name__ == "__main__":
    main()
