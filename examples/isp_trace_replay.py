#!/usr/bin/env python3
"""ISP scenario: replay a GÉANT-like traffic trace over one precomputed plan.

Reproduces the essence of Figure 5 of the paper: a single off-line
computation of the always-on and on-demand paths is enough to serve days of
real(istic) traffic while saving roughly a third of the network power — and
noticeably more with the energy-proportional "alternative hardware" model.

Run with:  python examples/isp_trace_replay.py
"""

from repro import (
    AlternativeHardwarePowerModel,
    CiscoRouterPowerModel,
    ResponseConfig,
    build_response_plan,
)
from repro.core import replay_trace
from repro.topology import build_geant
from repro.traffic import generate_geant_trace, select_pairs_among_subset, trace_time_labels


def main() -> None:
    topology = build_geant()
    pairs = select_pairs_among_subset(topology.routers(), num_endpoints=20, num_pairs=110, seed=5)

    # Two days of 15-minute traffic matrices, subsampled to one point per hour
    # to keep the example quick.
    trace = generate_geant_trace(topology, num_days=2, pairs=pairs, seed=5).subsampled(4)
    labels = trace_time_labels(trace)
    print(f"Replaying {len(trace)} intervals of the synthetic GÉANT trace")

    for model_name, power_model in (
        ("Cisco 12000 (today's hardware)", CiscoRouterPowerModel()),
        ("alternative hardware (chassis / 10)", AlternativeHardwarePowerModel()),
    ):
        plan = build_response_plan(
            topology, power_model, pairs=pairs, config=ResponseConfig(num_paths=3, k=3)
        )
        results = replay_trace(topology, power_model, plan, trace.matrices())
        power = [result.power_percent for result in results]
        overloaded = sum(1 for result in results if result.overloaded_pairs)
        print(f"\n=== {model_name} ===")
        print(f"mean power   : {sum(power) / len(power):5.1f}% of the original network")
        print(f"mean savings : {100 - sum(power) / len(power):5.1f}%")
        print(f"power range  : {min(power):.1f}% .. {max(power):.1f}%")
        print(f"intervals with overloaded pairs: {overloaded}/{len(results)}")
        print("sample timeline (one point every 6 hours):")
        for index in range(0, len(results), 6):
            print(f"  {labels[index]:>13}  power {power[index]:5.1f}%")


if __name__ == "__main__":
    main()
